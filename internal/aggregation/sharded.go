package aggregation

import (
	"sync"

	"slb/internal/hashing"
)

// ShardFor maps a key digest to one of `shards` reducer shards with the
// same Lemire multiply-shift reduction the routing layer uses
// (hashing.Bounded over the avalanched digest). It is a pure function
// of the carried digest — no key bytes are touched — so every worker
// and every engine sends a key's partials to the same shard, and the
// per-key merge stays strictly within one shard.
//
// The reduction consumes the HIGH bits of Mix64(dg) while the partial
// tables index by its low bits, so shard choice and table placement are
// effectively independent.
func ShardFor(dg KeyDigest, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(hashing.Bounded(hashing.Mix64(dg), uint64(shards)))
}

// shardCounts tracks, per (window, shard), how many messages the
// sources have EMITTED: the per-shard completeness thresholds the
// sharded reducers close windows against. Keys partition across shards
// by digest, so — unlike the unsharded case — a shard's share of a
// window is data-dependent and must be counted, not computed. Counting
// happens at routing time (the digest is already in hand), strictly
// before the message can be processed, flushed, or merged; a threshold
// is declared FINAL only once the whole window's emission is accounted
// for, so a reducer shard can never close a window early against a
// still-growing count.
//
// Thread-safe: engines' sources observe emissions concurrently with the
// reducer shards reading thresholds.
type shardCounts struct {
	mu       sync.Mutex
	shards   int
	winSize  int64
	messages int64
	rows     map[int64][]int64 // window → [shards] emitted counts + total in [shards]
	lastW    int64
	lastRow  []int64
}

func newShardCounts(shards int, windowSize, messages int64) *shardCounts {
	return &shardCounts{
		shards:   shards,
		winSize:  windowSize,
		messages: messages,
		rows:     make(map[int64][]int64),
		lastW:    -1 << 62,
	}
}

// row returns window w's count row, allocating on first touch. Caller
// holds mu. Windows are emitted (nearly) in order, so the last row is
// cached.
func (c *shardCounts) row(w int64) []int64 {
	if w == c.lastW {
		return c.lastRow
	}
	r := c.rows[w]
	if r == nil {
		r = make([]int64, c.shards+1)
		c.rows[w] = r
	}
	c.lastW, c.lastRow = w, r
	return r
}

func (c *shardCounts) observe(seq int64, dg KeyDigest) {
	c.mu.Lock()
	r := c.row(seq / c.winSize)
	r[ShardFor(dg, c.shards)]++
	r[c.shards]++
	c.mu.Unlock()
}

func (c *shardCounts) observeBatch(base int64, digs []KeyDigest) {
	c.mu.Lock()
	for i, dg := range digs {
		r := c.row((base + int64(i)) / c.winSize)
		r[ShardFor(dg, c.shards)]++
		r[c.shards]++
	}
	c.mu.Unlock()
}

// expected returns shard r's completeness threshold for window w and
// whether it is final (the whole window has been emitted and counted).
func (c *shardCounts) expected(w int64, shard int) (int64, bool) {
	full := c.winSize
	if c.messages > 0 {
		if last := (c.messages - 1) / c.winSize; w == last {
			full = c.messages - last*c.winSize
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	row := c.rows[w]
	if row == nil {
		return 0, false
	}
	return row[shard], row[c.shards] >= full
}

// ShardedDriver is the R-way reduce stage: R independent Drivers, each
// owning the keys whose digests ShardFor maps to it, behind one façade
// that preserves the completeness-based window close PER SHARD. Shard
// thresholds are counted at emission (ObserveEmit/ObserveEmits — the
// engines call these where they route), so each shard closes its slice
// of a window the instant it has merged every partial that slice will
// ever produce, independent of the other shards.
//
// With shards == 1 it degenerates to exactly the single-Driver
// behaviour (closed-form thresholds, no counting, no locking on the
// emission path).
//
// Concurrency contract: MergeShard/FinishShard on DISTINCT shards may
// run concurrently (the goroutine engine gives each shard its own
// reducer goroutine); ObserveEmit/ObserveEmits may run concurrently
// with everything. Merge/Finish and the accessors (Stats, Replication,
// Total) are for single-threaded engines or post-join reporting.
type ShardedDriver struct {
	drivers []*Driver
	counts  *shardCounts // nil when unsharded
	bufs    [][]Partial  // per-shard scratch for Merge
	m       Merger
	winSize int64
	msgs    int64
}

// NewShardedDriver returns an R-way reduce stage for an engine run of
// `messages` total messages in tumbling windows of windowSize, merging
// values with m (nil means CountMerger). shards ≤ 1 means a single
// unsharded reducer.
func NewShardedDriver(workers, shards int, windowSize, messages int64, m Merger) *ShardedDriver {
	if windowSize <= 0 {
		panic("aggregation: ShardedDriver windowSize must be positive")
	}
	if shards <= 1 {
		return &ShardedDriver{
			drivers: []*Driver{NewDriverMerger(workers, windowSize, messages, m)},
			bufs:    make([][]Partial, 1),
			m:       m, winSize: windowSize, msgs: messages,
		}
	}
	sd := &ShardedDriver{
		drivers: make([]*Driver, shards),
		counts:  newShardCounts(shards, windowSize, messages),
		bufs:    make([][]Partial, shards),
		m:       m, winSize: windowSize, msgs: messages,
	}
	for r := range sd.drivers {
		shard := r
		sd.drivers[r] = newDriverExpected(workers, m, func(w int64) (int64, bool) {
			return sd.counts.expected(w, shard)
		})
	}
	return sd
}

// Shards returns the number of reducer shards.
func (sd *ShardedDriver) Shards() int { return len(sd.drivers) }

// ObserveEmit records one routed message (its global emission sequence
// number and carried digest) toward the per-shard completeness
// thresholds. Engines MUST call it — before the message becomes
// processable — for every message when sharding is on; with one shard
// it is a no-op.
func (sd *ShardedDriver) ObserveEmit(seq int64, dg KeyDigest) {
	if sd.counts != nil {
		sd.counts.observe(seq, dg)
	}
}

// ObserveEmits is the batched form of ObserveEmit for a routed slab
// whose digests digs correspond to emission sequences base, base+1, …
// (one lock for the whole slab).
func (sd *ShardedDriver) ObserveEmits(base int64, digs []KeyDigest) {
	if sd.counts != nil && len(digs) > 0 {
		sd.counts.observeBatch(base, digs)
	}
}

// merger returns the merge operator the stage was built with (never
// nil: construction defaults to CountMerger) — combiner-tree nodes fold
// with the same operator the reducers combine with.
func (sd *ShardedDriver) merger() Merger {
	if sd.m == nil {
		return CountMerger
	}
	return sd.m
}

// expectedFor returns shard r's completeness threshold for window w and
// whether it is final. Sharded stages read the emission-counted
// thresholds; the unsharded stage uses the closed form (every window
// holds exactly winSize messages, the last the remainder), which is
// always final.
func (sd *ShardedDriver) expectedFor(w int64, shard int) (int64, bool) {
	if sd.counts != nil {
		return sd.counts.expected(w, shard)
	}
	if sd.msgs > 0 {
		if last := (sd.msgs - 1) / sd.winSize; w == last {
			return sd.msgs - last*sd.winSize, true
		}
	}
	return sd.winSize, true
}

// ObserveReplica records one (window, key, worker) state triple toward
// shard `shard`'s exact replication accounting. The combiner tree calls
// it — at the BOLT, before a partial enters the tree and its worker
// identity is merged away — once per flushed partial; the combined
// partials that later reach the driver carry Worker = CombinedWorker
// and are skipped by Merge's own observation, so each triple is counted
// through exactly one path. Thread-safe: bolts observe concurrently
// with the shard goroutine closing windows.
func (sd *ShardedDriver) ObserveReplica(shard int, window int64, dg KeyDigest, worker int32) {
	sd.drivers[shard].observeReplica(WindowKeyID(window, dg), int(worker))
}

// Merge splits a flushed slab by digest shard and folds each piece into
// its shard's driver (ascending shard order, slab order within a
// shard), closing any window slices the slab completed. For
// single-threaded engines; concurrent engines pre-split and call
// MergeShard from each shard's goroutine.
func (sd *ShardedDriver) Merge(ps []Partial, onFinal func(Final)) {
	if len(ps) == 0 {
		return
	}
	if len(sd.drivers) == 1 {
		sd.drivers[0].Merge(ps, onFinal)
		return
	}
	for r := range sd.bufs {
		sd.bufs[r] = sd.bufs[r][:0]
	}
	for i := range ps {
		r := ShardFor(ps[i].Digest, len(sd.drivers))
		sd.bufs[r] = append(sd.bufs[r], ps[i])
	}
	for r, buf := range sd.bufs {
		if len(buf) > 0 {
			sd.drivers[r].Merge(buf, onFinal)
		}
	}
}

// MergeShard folds a slab already filtered to shard r into that shard's
// driver. Safe to call concurrently across DISTINCT shards.
func (sd *ShardedDriver) MergeShard(r int, ps []Partial, onFinal func(Final)) {
	sd.drivers[r].Merge(ps, onFinal)
}

// Finish closes every remaining window on every shard (end of stream).
func (sd *ShardedDriver) Finish(onFinal func(Final)) {
	for _, d := range sd.drivers {
		d.Finish(onFinal)
	}
}

// FinishShard closes shard r's remaining windows (end of stream); the
// per-goroutine form of Finish.
func (sd *ShardedDriver) FinishShard(r int, onFinal func(Final)) {
	sd.drivers[r].Finish(onFinal)
}

// StatsShard returns shard r's cost counters.
func (sd *ShardedDriver) StatsShard(r int) ReducerStats { return sd.drivers[r].Stats() }

// LiveEntriesShard returns shard r's current live (window, key)
// entries. Safe to call concurrently with that shard's MergeShard —
// telemetry gauges poll it mid-run.
func (sd *ShardedDriver) LiveEntriesShard(r int) int64 { return sd.drivers[r].LiveEntries() }

// LiveWindowsShard returns shard r's currently open window count; same
// concurrency contract as LiveEntriesShard.
func (sd *ShardedDriver) LiveWindowsShard(r int) int64 { return sd.drivers[r].LiveWindows() }

// LiveReplicasShard returns the number of (window, key) identities on
// shard r currently holding a replica bitset. Thread-safe.
func (sd *ShardedDriver) LiveReplicasShard(r int) int { return sd.drivers[r].LiveReplicas() }

// LiveReplicas sums the live replica-bitset count across shards: the
// reduce stage's replica-accounting memory footprint. Thread-safe.
func (sd *ShardedDriver) LiveReplicas() int {
	n := 0
	for _, d := range sd.drivers {
		n += d.LiveReplicas()
	}
	return n
}

// Stats returns the reduce stage's cost counters summed across shards.
// PeakEntries is the sum of per-shard peaks (an upper bound on the
// stage's simultaneous memory: shards peak independently); PeakWindows
// is the max across shards (every shard sees the same windows).
func (sd *ShardedDriver) Stats() ReducerStats {
	var out ReducerStats
	for _, d := range sd.drivers {
		st := d.Stats()
		out.Partials += st.Partials
		out.Merges += st.Merges
		out.Finals += st.Finals
		out.WindowsClosed += st.WindowsClosed
		out.Late += st.Late
		out.PeakEntries += st.PeakEntries
		if st.PeakWindows > out.PeakWindows {
			out.PeakWindows = st.PeakWindows
		}
	}
	return out
}

// Replication returns the exact measured state replication factor over
// all shards: distinct (window, key, worker) triples per distinct
// (window, key). Keys partition across shards, so the shard totals add.
func (sd *ShardedDriver) Replication() float64 {
	var pairs int64
	var keys int
	for _, d := range sd.drivers {
		pairs += d.reps.Total()
		keys += d.reps.Keys()
	}
	if keys == 0 {
		return 0
	}
	return float64(pairs) / float64(keys)
}

// Total returns the sum of all final counts emitted so far.
func (sd *ShardedDriver) Total() int64 {
	var t int64
	for _, d := range sd.drivers {
		t += d.Total()
	}
	return t
}
