package simulator

import (
	"sort"
	"strings"
	"testing"

	"slb/internal/core"
	"slb/internal/metrics"
	"slb/internal/stream"
	"slb/internal/workload"
)

func zipfGen(z float64, keys int, m int64) stream.Generator {
	return workload.NewZipf(z, keys, m, 17)
}

func TestRunConservesMessages(t *testing.T) {
	gen := zipfGen(1.0, 100, 5000)
	res, err := Run(gen, "PKG", core.Config{Workers: 8, Seed: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, l := range res.Loads {
		sum += l
	}
	if sum != 5000 || res.Messages != 5000 {
		t.Fatalf("message conservation violated: loads sum %d, messages %d", sum, res.Messages)
	}
	if res.Sources != 5 {
		t.Fatalf("default sources = %d, want 5", res.Sources)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if _, err := Run(zipfGen(1, 10, 10), "BOGUS", core.Config{Workers: 2}, Options{}); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestRunDeterministic(t *testing.T) {
	gen := zipfGen(1.5, 200, 20000)
	cfg := core.Config{Workers: 10, Seed: 9}
	a, _ := Run(gen, "W-C", cfg, Options{})
	b, _ := Run(gen, "W-C", cfg, Options{})
	for i := range a.Loads {
		if a.Loads[i] != b.Loads[i] {
			t.Fatal("simulation not deterministic")
		}
	}
}

func TestSGNearPerfectBalance(t *testing.T) {
	res, _ := Run(zipfGen(2.0, 100, 10000), "SG", core.Config{Workers: 10, Seed: 3}, Options{})
	if res.Imbalance > 0.001 {
		t.Fatalf("SG imbalance %f, want ≈0", res.Imbalance)
	}
}

func TestFig1ShapePKGDegradesWCHolds(t *testing.T) {
	// The paper's Fig 1 on a WP-like head frequency (p1 ≈ 9.3%): PKG is
	// fine at n=5 but imbalanced at n=50; W-C low everywhere. PKG's
	// small-n imbalance is hash luck per seed — a hot key whose two
	// candidates coincide pins its mass — so the claim is evaluated as a
	// median over seeds rather than at one (possibly lucky or unlucky)
	// seed.
	gen := zipfGen(1.28, 2000, 100000) // p1 ≈ 9% at this support
	seeds := []uint64{1, 2, 3, 4, 5}
	var smalls []float64
	for _, seed := range seeds {
		small, _ := Run(gen, "PKG", core.Config{Workers: 5, Seed: seed}, Options{})
		smalls = append(smalls, small.Imbalance)
		large, _ := Run(gen, "PKG", core.Config{Workers: 50, Seed: seed}, Options{})
		wc, _ := Run(gen, "W-C", core.Config{Workers: 50, Seed: seed}, Options{})
		if large.Imbalance < 5*wc.Imbalance {
			t.Errorf("seed %d: at n=50, PKG %f should exceed W-C %f by ≥5×",
				seed, large.Imbalance, wc.Imbalance)
		}
	}
	// At n=5, a lucky hash draw (hot key with two distinct candidates and
	// no heavy overlap) balances almost perfectly; unlucky draws pin hot
	// mass and cannot. The figure's claim is about the favourable regime,
	// so assert the best draw is near-perfect and the median moderate.
	sort.Float64s(smalls)
	if smalls[0] > 0.005 {
		t.Errorf("PKG at n=5: best-seed imbalance %f, want ≤ 0.005 (per-seed: %v)", smalls[0], smalls)
	}
	if med := smalls[len(smalls)/2]; med > 0.08 {
		t.Errorf("PKG at n=5: median imbalance over seeds %f, want ≤ 0.08 (per-seed: %v)", med, smalls)
	}
}

func TestSeriesSnapshots(t *testing.T) {
	res, _ := Run(zipfGen(1.0, 50, 10000), "PKG", core.Config{Workers: 4, Seed: 1},
		Options{Snapshots: 10})
	if len(res.Series) < 9 || len(res.Series) > 11 {
		t.Fatalf("snapshots = %d, want ≈10", len(res.Series))
	}
	var prev int64 = -1
	for _, p := range res.Series {
		if p.Messages <= prev {
			t.Fatal("series not strictly increasing in messages")
		}
		prev = p.Messages
		if p.Imbalance < 0 {
			t.Fatal("negative imbalance in series")
		}
	}
}

func TestHeadTailSplit(t *testing.T) {
	gen := zipfGen(2.0, 100, 20000)
	res, _ := Run(gen, "W-C", core.Config{Workers: 5, Seed: 4}, Options{
		HeadKey: func(k string) bool { return k == "k0" },
	})
	var head, tail, total int64
	for w := range res.Loads {
		head += res.HeadLoads[w]
		tail += res.TailLoads[w]
		total += res.Loads[w]
	}
	if head+tail != total {
		t.Fatalf("head %d + tail %d != total %d", head, tail, total)
	}
	// z=2.0: k0 carries ≈61% of the stream.
	if f := float64(head) / float64(total); f < 0.5 || f > 0.7 {
		t.Fatalf("head fraction %f, want ≈0.61", f)
	}
}

func TestReplicaTracking(t *testing.T) {
	gen := zipfGen(2.0, 500, 30000)
	pkg, _ := Run(gen, "PKG", core.Config{Workers: 20, Seed: 6}, Options{TrackReplicas: true})
	wc, _ := Run(gen, "W-C", core.Config{Workers: 20, Seed: 6}, Options{TrackReplicas: true})
	sg, _ := Run(gen, "SG", core.Config{Workers: 20, Seed: 6}, Options{TrackReplicas: true})
	if pkg.Replicas <= 0 || wc.Replicas <= 0 {
		t.Fatal("replicas not tracked")
	}
	// Each source routes with 2 choices, so a key can touch up to 2
	// replicas per source; PKG must still be far below SG's full spread.
	if pkg.Replicas >= sg.Replicas {
		t.Fatalf("PKG replicas %d should be below SG %d", pkg.Replicas, sg.Replicas)
	}
	if wc.Replicas < pkg.Replicas {
		t.Fatalf("W-C replicas %d should be ≥ PKG %d", wc.Replicas, pkg.Replicas)
	}
	if pkg.DistinctKeys != wc.DistinctKeys {
		t.Fatalf("distinct keys differ: %d vs %d", pkg.DistinctKeys, wc.DistinctKeys)
	}
}

func TestFinalDExposedForDC(t *testing.T) {
	res, _ := Run(zipfGen(2.0, 1000, 50000), "D-C", core.Config{Workers: 10, Seed: 5}, Options{})
	if res.FinalD < 2 {
		t.Fatalf("FinalD = %d, want ≥ 2", res.FinalD)
	}
	res, _ = Run(zipfGen(2.0, 1000, 50000), "PKG", core.Config{Workers: 10, Seed: 5}, Options{})
	if res.FinalD != 0 {
		t.Fatalf("FinalD for PKG = %d, want 0", res.FinalD)
	}
}

func TestDistributedMergeImprovesOrMatches(t *testing.T) {
	// With sketch merging on, each source sees near-global frequencies;
	// the imbalance must stay in the same ballpark (merge must not break
	// routing) and head detection must still work.
	gen := zipfGen(1.8, 1000, 40000)
	cfg := core.Config{Workers: 20, Seed: 8}
	local, _ := Run(gen, "W-C", cfg, Options{})
	merged, _ := Run(gen, "W-C", cfg, Options{MergeEvery: 5000})
	if merged.Imbalance > local.Imbalance*3+0.01 {
		t.Fatalf("merged imbalance %f much worse than local %f", merged.Imbalance, local.Imbalance)
	}
}

func TestMergeNoopForSketchlessAlgorithms(t *testing.T) {
	gen := zipfGen(1.0, 100, 5000)
	if _, err := Run(gen, "PKG", core.Config{Workers: 4, Seed: 1}, Options{MergeEvery: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	gen := zipfGen(1.5, 300, 20000)
	res, err := Compare(gen, []string{"PKG", "W-C", "SG"}, core.Config{Workers: 10, Seed: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("Compare returned %d results", len(res))
	}
	for name, r := range res {
		if !strings.EqualFold(r.Algorithm, name) {
			t.Fatalf("result name mismatch: %q vs %q", r.Algorithm, name)
		}
		if r.Messages != 20000 {
			t.Fatalf("%s processed %d messages", name, r.Messages)
		}
	}
}

func TestRunPartitioners(t *testing.T) {
	// Greedy-d sweep support: use raw PKG instances (d=2) via the direct API.
	parts := make([]core.Partitioner, 3)
	for i := range parts {
		parts[i] = core.NewPKG(core.Config{Workers: 6, Seed: 11})
	}
	res := RunPartitioners(zipfGen(1.0, 100, 6000), "PKG-sweep", parts, Options{})
	if res.Sources != 3 || res.Messages != 6000 {
		t.Fatalf("RunPartitioners result %+v", res)
	}
	if res.Imbalance != metrics.Imbalance(res.Loads) {
		t.Fatal("result imbalance inconsistent with loads")
	}
}
