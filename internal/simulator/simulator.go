// Package simulator implements the paper's simulation setup (Section
// V-A): the simplest possible DAG of s sources and n workers with one
// partitioned stream in between. The input stream reaches the sources
// via shuffle grouping (round-robin); each source runs its own
// partitioner instance with sender-local load estimates, and the
// simulator aggregates the global worker loads to compute the imbalance
// I(t), the head/tail load split (Fig. 8), and the measured memory cost
// in key replicas (Figs. 5–6).
package simulator

import (
	"fmt"

	"slb/internal/core"
	"slb/internal/metrics"
	"slb/internal/spacesaving"
	"slb/internal/stream"
)

// Options configures a simulation run.
type Options struct {
	// Sources is s, the number of upstream operator instances (Table III
	// default: 5).
	Sources int
	// Snapshots is the number of equally spaced imbalance measurements
	// collected over the run (0 disables the time series).
	Snapshots int
	// TrackReplicas enables distinct (key, worker) accounting. It costs
	// O(|K|) memory, so it is off by default.
	TrackReplicas bool
	// HeadKey classifies keys as head for the head/tail load split of
	// Fig. 8; nil disables the split. The classifier is external ground
	// truth (the true distribution), independent of the algorithms'
	// online head estimates.
	HeadKey func(key string) bool
	// MergeEvery, when positive, merges the sources' SpaceSaving sketches
	// every MergeEvery messages and redistributes the merged sketch — the
	// distributed heavy-hitters mode. Zero keeps sketches sender-local
	// (the paper's default).
	MergeEvery int64
}

func (o Options) withDefaults() Options {
	if o.Sources <= 0 {
		o.Sources = 5
	}
	return o
}

// Point is one imbalance measurement at a stream position.
type Point struct {
	Messages  int64
	Imbalance float64
}

// Result aggregates the outcome of one simulation run.
type Result struct {
	Algorithm string
	Workers   int
	Sources   int
	Messages  int64
	// Imbalance is I(m): the final imbalance over the whole run.
	Imbalance float64
	// Series is the imbalance time series (empty unless Snapshots > 0).
	Series []Point
	// Loads are the absolute per-worker message counts.
	Loads []int64
	// HeadLoads/TailLoads split Loads by the HeadKey classifier (nil
	// unless a classifier was provided).
	HeadLoads, TailLoads []int64
	// Replicas is the measured number of distinct (key, worker) pairs
	// (−1 unless TrackReplicas).
	Replicas int64
	// DistinctKeys is the number of distinct keys (−1 unless TrackReplicas).
	DistinctKeys int
	// FinalD is the last d used by D-Choices (0 for other algorithms).
	FinalD int
}

// sketchCarrier is implemented by the partitioners that track the head
// with a SpaceSaving sketch (D-C, W-C, RR).
type sketchCarrier interface {
	HeadTracker() *core.HeadTracker
}

// dCarrier is implemented by D-Choices to expose its current d.
type dCarrier interface{ D() int }

// Run routes the whole of gen through a fresh set of per-source
// partitioners built by factory and measures the result. The generator
// is reset before use, so runs are reproducible and independent.
func Run(gen stream.Generator, algorithm string, cfg core.Config, opts Options) (Result, error) {
	opts = opts.withDefaults()
	parts := make([]core.Partitioner, opts.Sources)
	for i := range parts {
		srcCfg := cfg
		srcCfg.Instance = i
		p, err := core.New(algorithm, srcCfg)
		if err != nil {
			return Result{}, err
		}
		parts[i] = p
	}
	return run(gen, algorithm, parts, opts), nil
}

// RunPartitioners is Run with caller-constructed per-source partitioners;
// used by experiments that need non-registry construction (e.g. Greedy-d
// sweeps for Fig. 9).
func RunPartitioners(gen stream.Generator, name string, parts []core.Partitioner, opts Options) Result {
	opts.Sources = len(parts)
	opts = opts.withDefaults()
	return run(gen, name, parts, opts)
}

func run(gen stream.Generator, name string, parts []core.Partitioner, opts Options) Result {
	gen.Reset()
	n := parts[0].Workers()
	total := gen.Len()
	res := Result{
		Algorithm:    name,
		Workers:      n,
		Sources:      len(parts),
		Loads:        make([]int64, n),
		Replicas:     -1,
		DistinctKeys: -1,
	}
	if opts.HeadKey != nil {
		res.HeadLoads = make([]int64, n)
		res.TailLoads = make([]int64, n)
	}
	var reps *metrics.Replicas
	if opts.TrackReplicas {
		reps = metrics.NewReplicas(n)
	}
	var snapEvery int64
	if opts.Snapshots > 0 && total > 0 {
		snapEvery = total / int64(opts.Snapshots)
		if snapEvery == 0 {
			snapEvery = 1
		}
	}

	// The routing loop pulls slabs through the batch emission path and
	// routes each source's sub-batch with one RouteBatch call. Messages
	// round-robin over the sources (shuffle grouping from the input), so
	// source s owns the slab positions congruent to s; routing all of one
	// source's positions before the next source's is equivalent to the
	// interleaved order because partitioner state is strictly
	// sender-local. Slabs are clipped at sketch-merge boundaries, the one
	// point where cross-source state is exchanged.
	const slabSize = 512
	nSrc := len(parts)
	slab := make([]string, slabSize)
	workers := make([]int, slabSize)
	srcKeys := make([][]string, nSrc)
	srcDst := make([][]int, nSrc)
	srcPos := make([]int, nSrc)
	for s := range srcKeys {
		srcKeys[s] = make([]string, 0, (slabSize+nSrc-1)/nSrc)
		srcDst[s] = make([]int, (slabSize+nSrc-1)/nSrc)
	}

	var m int64
	src := 0 // source of the slab's first message
	for {
		want := slabSize
		if opts.MergeEvery > 0 {
			if rem := opts.MergeEvery - m%opts.MergeEvery; rem < int64(want) {
				want = int(rem)
			}
		}
		n := stream.NextBatch(gen, slab[:want])
		if n == 0 {
			break
		}
		for s := range srcKeys {
			srcKeys[s] = srcKeys[s][:0]
			srcPos[s] = 0
		}
		for i := 0; i < n; i++ {
			s := (src + i) % nSrc
			srcKeys[s] = append(srcKeys[s], slab[i])
		}
		for s := 0; s < nSrc; s++ {
			if len(srcKeys[s]) > 0 {
				core.RouteBatch(parts[s], srcKeys[s], srcDst[s])
			}
		}
		for i := 0; i < n; i++ {
			s := (src + i) % nSrc
			workers[i] = srcDst[s][srcPos[s]]
			srcPos[s]++
		}
		src = (src + n) % nSrc

		// Sequential accounting in original message order.
		for i := 0; i < n; i++ {
			key, w := slab[i], workers[i]
			res.Loads[w]++
			m++
			if opts.HeadKey != nil {
				if opts.HeadKey(key) {
					res.HeadLoads[w]++
				} else {
					res.TailLoads[w]++
				}
			}
			if reps != nil {
				reps.Observe(key, w)
			}
			if snapEvery > 0 && m%snapEvery == 0 {
				res.Series = append(res.Series, Point{Messages: m, Imbalance: metrics.Imbalance(res.Loads)})
			}
		}
		if opts.MergeEvery > 0 && m%opts.MergeEvery == 0 {
			mergeSketches(parts)
		}
	}

	res.Messages = m
	res.Imbalance = metrics.Imbalance(res.Loads)
	if reps != nil {
		res.Replicas = reps.Total()
		res.DistinctKeys = reps.Keys()
	}
	for _, p := range parts {
		if dc, ok := p.(dCarrier); ok {
			res.FinalD = dc.D()
		}
	}
	gen.Reset()
	return res
}

// mergeSketches implements the distributed heavy-hitter exchange: all
// sources' sketches are merged into one global summary, and each source
// continues from an independent copy of it.
func mergeSketches(parts []core.Partitioner) {
	var global *spacesaving.Summary
	carriers := make([]sketchCarrier, 0, len(parts))
	for _, p := range parts {
		sc, ok := p.(sketchCarrier)
		if !ok || sc.HeadTracker().Sketch() == nil {
			return // no mergeable sketches (baseline or sliding-window mode)
		}
		carriers = append(carriers, sc)
		if global == nil {
			global = sc.HeadTracker().Sketch().Clone()
		} else {
			global = global.Merge(sc.HeadTracker().Sketch())
		}
	}
	for i, sc := range carriers {
		if i == len(carriers)-1 {
			sc.HeadTracker().SetSketch(global)
			break
		}
		sc.HeadTracker().SetSketch(global.Clone())
	}
}

// Compare runs the same generator through several algorithms and returns
// results keyed by algorithm name, a convenience for experiments that
// report one row per algorithm.
func Compare(gen stream.Generator, algorithms []string, cfg core.Config, opts Options) (map[string]Result, error) {
	out := make(map[string]Result, len(algorithms))
	for _, a := range algorithms {
		r, err := Run(gen, a, cfg, opts)
		if err != nil {
			return nil, fmt.Errorf("simulator: %s: %w", a, err)
		}
		out[a] = r
	}
	return out, nil
}
