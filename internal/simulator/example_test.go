package simulator_test

import (
	"fmt"

	"slb/internal/core"
	"slb/internal/simulator"
	"slb/internal/workload"
)

// The paper's headline comparison in a few lines: at scale, two choices
// cannot contain a hot key but W-Choices can.
func ExampleRun() {
	gen := workload.NewZipf(2.0, 1000, 100_000, 42)
	cfg := core.Config{Workers: 50, Seed: 42}
	pkg, _ := simulator.Run(gen, "PKG", cfg, simulator.Options{Sources: 5})
	wc, _ := simulator.Run(gen, "W-C", cfg, simulator.Options{Sources: 5})
	fmt.Printf("PKG imbalance > 0.2: %v\n", pkg.Imbalance > 0.2)
	fmt.Printf("W-C imbalance < 0.001: %v\n", wc.Imbalance < 0.001)
	// Output:
	// PKG imbalance > 0.2: true
	// W-C imbalance < 0.001: true
}
