package clirun

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMainList(t *testing.T) {
	var b strings.Builder
	if err := Main(&b, Options{Scale: "quick"}, []string{"list"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fig1", "fig10", "table1", "ablate-eps"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
	if strings.Contains(out, "fig13") {
		t.Error("simulation list should not include cluster experiments")
	}

	b.Reset()
	if err := Main(&b, Options{Scale: "quick", Cluster: true}, []string{"list"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "fig13") || strings.Contains(b.String(), "fig1 ") {
		t.Errorf("cluster list wrong:\n%s", b.String())
	}
}

func TestMainSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := Main(&b, Options{Scale: "quick", CSVDir: dir}, []string{"fig3"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Fig 3") {
		t.Errorf("output missing table:\n%s", b.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3_0.csv"))
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if !strings.HasPrefix(string(data), "z,") {
		t.Errorf("CSV header wrong: %q", data[:20])
	}
}

func TestMainErrors(t *testing.T) {
	var b strings.Builder
	if err := Main(&b, Options{Scale: "bogus-scale"}, []string{"fig3"}); err == nil {
		t.Error("bad scale accepted")
	}
	if err := Main(&b, Options{Scale: "quick"}, nil); err == nil {
		t.Error("missing experiment name accepted")
	}
	if err := Main(&b, Options{Scale: "quick"}, []string{"nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := Main(&b, Options{Scale: "quick"}, []string{"fig13"}); err == nil {
		t.Error("cluster experiment accepted by simulation binary")
	}
	if err := Main(&b, Options{Scale: "quick", Cluster: true}, []string{"fig3"}); err == nil {
		t.Error("simulation experiment accepted by cluster binary")
	}
}

func TestMainChart(t *testing.T) {
	var b strings.Builder
	if err := Main(&b, Options{Scale: "quick", Chart: true}, []string{"fig3"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// The chart footer carries the series legend with glyphs.
	if !strings.Contains(out, "* n=50") {
		t.Errorf("chart output missing:\n%s", out)
	}
}

func TestMainAllCluster(t *testing.T) {
	var b strings.Builder
	if err := Main(&b, Options{Scale: "quick", Cluster: true}, []string{"all"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Fig 13") || !strings.Contains(out, "Fig 14") {
		t.Errorf("cluster 'all' missing figures:\n%s", out)
	}
}

func TestMainJSONCarriesMeta(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	opts := Options{
		Scale:   "quick",
		JSONDir: dir,
		Meta:    map[string]string{"seed": "42", "host": "ci-runner"},
	}
	if err := Main(&b, opts, []string{"fig3"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_fig3_0.json"))
	if err != nil {
		t.Fatalf("JSON not written: %v", err)
	}
	var doc struct {
		Title string            `json:"title"`
		Meta  map[string]string `json:"meta"`
		Rows  [][]string        `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"experiment": "fig3",
		"table":      "0",
		"scale":      "quick",
		"seed":       "42",
		"host":       "ci-runner",
	}
	for k, v := range want {
		if doc.Meta[k] != v {
			t.Errorf("meta[%q] = %q, want %q", k, doc.Meta[k], v)
		}
	}
	if len(doc.Rows) == 0 {
		t.Error("JSON table has no rows")
	}
}

func TestMetaFlag(t *testing.T) {
	m := MetaFlag{}
	for _, kv := range []string{"seed=7", "config=W-C,n=8", "seed=9"} {
		if err := m.Set(kv); err != nil {
			t.Fatal(err)
		}
	}
	if m["seed"] != "9" {
		t.Errorf("repeated key should overwrite: seed = %q", m["seed"])
	}
	if m["config"] != "W-C,n=8" {
		t.Errorf("value with '=' mangled: %q", m["config"])
	}
	if err := m.Set("novalue"); err == nil {
		t.Error("bare token accepted")
	}
	if err := m.Set("=x"); err == nil {
		t.Error("empty key accepted")
	}
	if got := m.String(); !strings.Contains(got, "seed=9") {
		t.Errorf("String() = %q", got)
	}
}
