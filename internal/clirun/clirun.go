// Package clirun is the shared driver behind cmd/slbsim and
// cmd/slbstorm: it resolves the scale flag, dispatches one experiment
// (or all, or list), prints the resulting tables and optionally writes
// CSV copies.
package clirun

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"slb/internal/asciichart"
	"slb/internal/experiments"
	"slb/internal/texttab"
)

// Options configures one CLI invocation.
type Options struct {
	// Scale is the -scale flag value (quick|default|full).
	Scale string
	// CSVDir, when non-empty, receives CSV copies of every table.
	CSVDir string
	// JSONDir, when non-empty, receives machine-readable JSON copies of
	// every table, named BENCH_<experiment>_<index>.json — the format
	// CI uploads as its perf-trajectory artifact.
	JSONDir string
	// Cluster selects which experiment family this binary owns
	// (false: simulation, true: DSPE cluster).
	Cluster bool
	// Chart additionally renders chartable tables as ASCII plots
	// (log-scale y, matching the paper's figures).
	Chart bool
	// Meta is free-form run metadata (seed, config, timestamp — the
	// -meta flag plus whatever the binary stamps) merged into every
	// JSON table's "meta" object alongside the driver's own keys
	// (experiment, table index, scale), so consumers keying the
	// BENCH_*.json trajectory can match on configuration rather than
	// file name alone. Caller keys win over the driver's on collision.
	Meta map[string]string
}

// MetaFlag accumulates repeated -meta key=value flags into a metadata
// map; it implements flag.Value for the CLI binaries.
type MetaFlag map[string]string

// String implements flag.Value.
func (m MetaFlag) String() string {
	parts := make([]string, 0, len(m))
	for k, v := range m {
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Set implements flag.Value, parsing one key=value pair.
func (m MetaFlag) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("meta flag %q is not key=value", s)
	}
	m[k] = v
	return nil
}

// Main executes one CLI invocation.
func Main(w io.Writer, opts Options, args []string) error {
	scaleFlag, csvDir, cluster := opts.Scale, opts.CSVDir, opts.Cluster
	sc, err := experiments.ParseScale(scaleFlag)
	if err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one experiment name (or 'all' / 'list')")
	}
	name := args[0]

	if name == "list" {
		for _, e := range experiments.List(true) {
			if e.Cluster != cluster {
				continue
			}
			fmt.Fprintf(w, "%-14s %s\n", e.Name, e.Description)
		}
		return nil
	}

	emit := func(expName string, tabs []*texttab.Table) error {
		for i, t := range tabs {
			if err := t.Fprint(w); err != nil {
				return err
			}
			if opts.Chart {
				if c, err := asciichart.FromTable(t, true); err == nil {
					if _, err := io.WriteString(w, c.Render()+"\n"); err != nil {
						return err
					}
				}
			}
			if csvDir != "" {
				path := filepath.Join(csvDir, fmt.Sprintf("%s_%d.csv", expName, i))
				if err := t.WriteCSV(path); err != nil {
					return err
				}
			}
			if opts.JSONDir != "" {
				// The JSON artifact carries run metadata: the driver's
				// keys identify which run produced the table, the
				// caller's (Options.Meta) add seed/config/timestamp. A
				// shallow copy keeps the printed/CSV table untouched.
				meta := map[string]string{
					"experiment": expName,
					"table":      strconv.Itoa(i),
					"scale":      scaleFlag,
				}
				for k, v := range t.Meta {
					meta[k] = v
				}
				for k, v := range opts.Meta {
					meta[k] = v
				}
				jt := *t
				jt.Meta = meta
				path := filepath.Join(opts.JSONDir, fmt.Sprintf("BENCH_%s_%d.json", expName, i))
				if err := jt.WriteJSON(path); err != nil {
					return err
				}
			}
		}
		return nil
	}

	if name == "all" {
		all, err := experiments.RunAll(sc, cluster)
		if err != nil {
			return err
		}
		for _, e := range experiments.List(true) {
			if tabs, ok := all[e.Name]; ok {
				if err := emit(e.Name, tabs); err != nil {
					return err
				}
			}
		}
		return nil
	}

	e, ok := experiments.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown experiment %q (try 'list')", name)
	}
	if e.Cluster != cluster {
		other := "slbsim"
		if e.Cluster {
			other = "slbstorm"
		}
		return fmt.Errorf("experiment %q belongs to %s", name, other)
	}
	tabs, err := e.Run(sc)
	if err != nil {
		return err
	}
	return emit(name, tabs)
}
