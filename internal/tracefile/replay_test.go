package tracefile

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"slb/internal/aggregation"
	"slb/internal/core"
	"slb/internal/dspe"
	"slb/internal/eventsim"
	"slb/internal/stream"
	"slb/internal/workload"
)

// record encodes a value-bearing trace of the workload into memory and
// returns a fresh replay generator per call.
func record(t *testing.T, m int64) func() *BytesGenerator {
	t.Helper()
	gen := stream.WithValues(workload.NewZipf(1.4, 200, m, 17), traceVals)
	var buf bytes.Buffer
	if _, err := Write(&buf, gen); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	return func() *BytesGenerator {
		g, err := NewBytesGenerator(data)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
}

// TestReplayFeedsEventsimMerger pins the sampling contract end to end
// on the deterministic engine: a version-2 replay with no AggValue hook
// merges the RECORDED values, producing exactly the finals a hook
// computing the same function would — and not the constant-1 fallback.
func TestReplayFeedsEventsimMerger(t *testing.T) {
	const m = 10000
	replay := record(t, m)
	run := func(hook func(string, int64) int64) []aggregation.Final {
		var finals []aggregation.Final
		cfg := eventsim.Config{
			Workers: 6, Sources: 3, Algorithm: "W-C",
			Core: core.Config{Seed: 17}, ServiceTime: 1.0,
			AggWindow: 500, AggShards: 2,
			AggMerger: aggregation.SumMerger, AggValue: hook,
			OnFinal: func(f aggregation.Final) { finals = append(finals, f) },
		}
		if _, err := eventsim.Run(replay(), cfg); err != nil {
			t.Fatal(err)
		}
		return finals
	}
	recorded := run(nil)
	hooked := run(traceVals) // the function the trace recorded
	if !reflect.DeepEqual(recorded, hooked) {
		t.Fatal("recorded-value replay disagrees with the equivalent AggValue hook")
	}
	var countSum, valueSum int64
	for _, f := range recorded {
		countSum += f.Count
		valueSum += f.Value
	}
	if countSum != m {
		t.Fatalf("finals count %d, want %d", countSum, m)
	}
	if valueSum == countSum {
		t.Fatal("merged values equal counts: replay fell back to the constant 1")
	}
}

// TestReplayFeedsDspeMerger runs the wall-clock engine on both
// dataplanes over the same recorded trace and checks the merged sums
// match a single-pass ground truth over the trace's (key, value) pairs.
func TestReplayFeedsDspeMerger(t *testing.T) {
	const (
		m      = 6000
		window = 500
	)
	replay := record(t, m)

	type fk struct {
		w int64
		k string
	}
	truth := map[fk]int64{}
	g := replay()
	keys := make([]string, 256)
	vals := make([]int64, 256)
	var pos int64
	for {
		n := g.NextBatchValues(keys, vals)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			truth[fk{pos / window, keys[i]}] += vals[i]
			pos++
		}
	}

	for _, plane := range []dspe.Dataplane{dspe.DataplaneChannel, dspe.DataplaneRing} {
		got := map[fk]int64{}
		var mu sync.Mutex
		res, err := dspe.Run(replay(), dspe.Config{
			Workers: 4, Sources: 2, Algorithm: "W-C",
			Core: core.Config{Seed: 17}, Dataplane: plane,
			AggWindow: window, AggShards: 2,
			AggMerger: aggregation.SumMerger,
			OnFinal: func(f aggregation.Final) {
				mu.Lock()
				got[fk{f.Window, f.Key}] += f.Value
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.AggTotal != m {
			t.Fatalf("plane %v: finals count to %d, want %d", plane, res.AggTotal, m)
		}
		if !reflect.DeepEqual(got, truth) {
			t.Fatalf("plane %v: merged sums diverge from the recorded trace", plane)
		}
	}
}
