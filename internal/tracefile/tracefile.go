// Package tracefile implements a compact binary format for key streams,
// so workloads can be generated once, saved, inspected and replayed
// bit-identically — the moral equivalent of the paper distributing its
// Wikipedia/Twitter traces. The format is a streaming dictionary coder:
//
//	header:  magic "SLBT" | version u32 | message count i64
//	message: varint id            (id < len(dict): back-reference)
//	         varint len | bytes   (id == len(dict): new key, appended)
//	         zigzag-varint value  (version 2 only: the payload sample)
//
// Keys are dictionary-coded by first appearance, so typical skewed
// traces compress to ≈1–2 bytes per message. Version 2 additionally
// records an int64 payload value per message — the sample a windowed
// merger aggregates (see stream.ValueBatchGenerator for the engines'
// sampling contract). Write picks the version automatically: key-only
// generators keep producing byte-identical version-1 traces, while
// value-bearing generators (stream.WithValues, another replay) yield
// version 2. Readers accept both; a version-1 replay reports
// HasValues() == false and supplies the constant 1.
//
// Readers implement stream.Generator (and stream.ValueBatchGenerator)
// and can therefore drive every engine in this module.
package tracefile

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"slb/internal/stream"
)

// Magic identifies trace files.
const Magic = "SLBT"

// Version is the newest format version this package writes and reads.
// Version 1 encodes keys only; version 2 appends a payload value to
// every message.
const Version = 2

// maxKeyLen guards against corrupt length prefixes.
const maxKeyLen = 1 << 20

// Write encodes every message of gen (reset first) to w and returns the
// message count. When gen records payload values (stream.Values returns
// non-nil) the trace is written as version 2 with the values inline;
// otherwise the output is a byte-identical version-1 key trace. The
// generator is reset again afterwards.
func Write(w io.Writer, gen stream.Generator) (int64, error) {
	vg := stream.Values(gen)
	version := uint32(1)
	if vg != nil {
		version = 2
	}
	gen.Reset()
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Magic); err != nil {
		return 0, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], version)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(gen.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}

	ids := make(map[string]uint64)
	var buf [binary.MaxVarintLen64]byte
	var count int64
	keys := make([]string, 512)
	vals := make([]int64, 512)
	for {
		var n int
		if vg != nil {
			n = vg.NextBatchValues(keys, vals)
		} else {
			n = stream.NextBatch(gen, keys)
		}
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			key := keys[i]
			id, seen := ids[key]
			if !seen {
				id = uint64(len(ids))
				ids[key] = id
				m := binary.PutUvarint(buf[:], id)
				if _, err := bw.Write(buf[:m]); err != nil {
					return count, err
				}
				m = binary.PutUvarint(buf[:], uint64(len(key)))
				if _, err := bw.Write(buf[:m]); err != nil {
					return count, err
				}
				if _, err := bw.WriteString(key); err != nil {
					return count, err
				}
			} else {
				m := binary.PutUvarint(buf[:], id)
				if _, err := bw.Write(buf[:m]); err != nil {
					return count, err
				}
			}
			if version >= 2 {
				m := binary.PutVarint(buf[:], vals[i])
				if _, err := bw.Write(buf[:m]); err != nil {
					return count, err
				}
			}
			count++
		}
	}
	gen.Reset()
	if count != gen.Len() {
		return count, fmt.Errorf("tracefile: generator emitted %d messages, declared %d", count, gen.Len())
	}
	return count, bw.Flush()
}

// WriteFile encodes gen into a new file at path.
func WriteFile(path string, gen stream.Generator) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := Write(f, gen)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// Reader decodes a trace from an io.ByteReader. It implements
// stream.Generator only when constructed through a resettable source
// (see NewBytesGenerator and OpenFile).
type Reader struct {
	br       io.ByteReader
	dict     []string
	version  uint32
	declared int64
	read     int64
}

// NewReader starts decoding from r, validating the header.
func NewReader(r io.Reader) (*Reader, error) {
	br, ok := r.(io.ByteReader)
	if !ok {
		br = bufio.NewReader(r)
	}
	magic := make([]byte, 4)
	if err := readFull(br, magic); err != nil {
		return nil, fmt.Errorf("tracefile: short header: %w", err)
	}
	if string(magic) != Magic {
		return nil, errors.New("tracefile: bad magic")
	}
	hdr := make([]byte, 12)
	if err := readFull(br, hdr); err != nil {
		return nil, fmt.Errorf("tracefile: short header: %w", err)
	}
	v := binary.LittleEndian.Uint32(hdr[0:4])
	if v < 1 || v > Version {
		return nil, fmt.Errorf("tracefile: unsupported version %d", v)
	}
	return &Reader{
		br:       br,
		version:  v,
		declared: int64(binary.LittleEndian.Uint64(hdr[4:12])),
	}, nil
}

func readFull(br io.ByteReader, p []byte) error {
	for i := range p {
		b, err := br.ReadByte()
		if err != nil {
			return err
		}
		p[i] = b
	}
	return nil
}

// Declared returns the message count from the header.
func (r *Reader) Declared() int64 { return r.declared }

// HasValues reports whether the trace records payload values (format
// version ≥ 2); when false, NextValue supplies the constant 1.
func (r *Reader) HasValues() bool { return r.version >= 2 }

// Next decodes one key (discarding any recorded value); io.EOF after
// the last message.
func (r *Reader) Next() (string, error) {
	k, _, err := r.NextValue()
	return k, err
}

// NextValue decodes one message as its key and payload value (1 for
// version-1 traces); io.EOF after the last message.
func (r *Reader) NextValue() (string, int64, error) {
	if r.read >= r.declared {
		return "", 0, io.EOF
	}
	id, err := binary.ReadUvarint(r.br)
	if err != nil {
		return "", 0, fmt.Errorf("tracefile: message %d: %w", r.read, err)
	}
	var key string
	switch {
	case id < uint64(len(r.dict)):
		key = r.dict[id]
	case id == uint64(len(r.dict)):
		n, err := binary.ReadUvarint(r.br)
		if err != nil {
			return "", 0, fmt.Errorf("tracefile: key length: %w", err)
		}
		if n > maxKeyLen {
			return "", 0, fmt.Errorf("tracefile: key length %d exceeds limit", n)
		}
		buf := make([]byte, n)
		if err := readFull(r.br, buf); err != nil {
			return "", 0, fmt.Errorf("tracefile: key bytes: %w", err)
		}
		key = string(buf)
		r.dict = append(r.dict, key)
	default:
		return "", 0, fmt.Errorf("tracefile: id %d skips dictionary (size %d)", id, len(r.dict))
	}
	val := int64(1)
	if r.version >= 2 {
		v, err := binary.ReadVarint(r.br)
		if err != nil {
			return "", 0, fmt.Errorf("tracefile: message %d value: %w", r.read, err)
		}
		val = v
	}
	r.read++
	return key, val, nil
}

// Keys returns the dictionary decoded so far.
func (r *Reader) Keys() int { return len(r.dict) }

// ---------------------------------------------------------------------------
// Generator adapters

// BytesGenerator replays an in-memory trace; implements stream.Generator.
type BytesGenerator struct {
	data []byte
	r    *Reader
}

// NewBytesGenerator validates data and returns a resettable generator.
func NewBytesGenerator(data []byte) (*BytesGenerator, error) {
	g := &BytesGenerator{data: data}
	if err := g.reset(); err != nil {
		return nil, err
	}
	return g, nil
}

func (g *BytesGenerator) reset() error {
	r, err := NewReader(bytes.NewReader(g.data))
	if err != nil {
		return err
	}
	g.r = r
	return nil
}

// Next implements stream.Generator; decode errors end the stream.
func (g *BytesGenerator) Next() (string, bool) {
	k, err := g.r.Next()
	if err != nil {
		return "", false
	}
	return k, true
}

// NextBatch implements stream.BatchGenerator.
func (g *BytesGenerator) NextBatch(dst []string) int {
	return readerBatch(g.r, dst)
}

// NextBatchValues implements stream.ValueBatchGenerator.
func (g *BytesGenerator) NextBatchValues(keys []string, vals []int64) int {
	return readerBatchValues(g.r, keys, vals)
}

// HasValues implements stream.ValueBatchGenerator: true for version-2
// traces, whose replay supplies the recorded payload values.
func (g *BytesGenerator) HasValues() bool { return g.r.HasValues() }

// Len implements stream.Generator.
func (g *BytesGenerator) Len() int64 { return g.r.declared }

// Reset implements stream.Generator.
func (g *BytesGenerator) Reset() {
	// The data validated at construction; re-validation cannot fail.
	_ = g.reset()
}

// FileGenerator replays a trace file; implements stream.Generator by
// re-opening the file on Reset.
type FileGenerator struct {
	path string
	file *os.File
	r    *Reader
}

// OpenFile opens a trace file as a resettable generator. Callers should
// Close it when done.
func OpenFile(path string) (*FileGenerator, error) {
	g := &FileGenerator{path: path}
	if err := g.reopen(); err != nil {
		return nil, err
	}
	return g, nil
}

func (g *FileGenerator) reopen() error {
	if g.file != nil {
		g.file.Close()
		g.file = nil
	}
	f, err := os.Open(g.path)
	if err != nil {
		return err
	}
	r, err := NewReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		f.Close()
		return err
	}
	g.file, g.r = f, r
	return nil
}

// Next implements stream.Generator; decode errors end the stream.
func (g *FileGenerator) Next() (string, bool) {
	k, err := g.r.Next()
	if err != nil {
		return "", false
	}
	return k, true
}

// NextBatch implements stream.BatchGenerator.
func (g *FileGenerator) NextBatch(dst []string) int {
	return readerBatch(g.r, dst)
}

// NextBatchValues implements stream.ValueBatchGenerator.
func (g *FileGenerator) NextBatchValues(keys []string, vals []int64) int {
	return readerBatchValues(g.r, keys, vals)
}

// HasValues implements stream.ValueBatchGenerator: true for version-2
// traces, whose replay supplies the recorded payload values.
func (g *FileGenerator) HasValues() bool { return g.r.HasValues() }

// readerBatch fills dst by repeated decode; errors (including EOF) end
// the stream.
func readerBatch(r *Reader, dst []string) int {
	for i := range dst {
		k, err := r.Next()
		if err != nil {
			return i
		}
		dst[i] = k
	}
	return len(dst)
}

// readerBatchValues fills keys and vals in lockstep; errors (including
// EOF) end the stream.
func readerBatchValues(r *Reader, keys []string, vals []int64) int {
	for i := range keys {
		k, v, err := r.NextValue()
		if err != nil {
			return i
		}
		keys[i], vals[i] = k, v
	}
	return len(keys)
}

// Len implements stream.Generator.
func (g *FileGenerator) Len() int64 { return g.r.declared }

// Reset implements stream.Generator.
func (g *FileGenerator) Reset() {
	if err := g.reopen(); err != nil {
		// The file opened at construction; if it has since vanished the
		// stream presents as empty rather than panicking mid-experiment.
		g.r = &Reader{declared: 0}
	}
}

// Close releases the underlying file.
func (g *FileGenerator) Close() error {
	if g.file == nil {
		return nil
	}
	err := g.file.Close()
	g.file = nil
	return err
}

var (
	_ stream.BatchGenerator      = (*BytesGenerator)(nil)
	_ stream.BatchGenerator      = (*FileGenerator)(nil)
	_ stream.ValueBatchGenerator = (*BytesGenerator)(nil)
	_ stream.ValueBatchGenerator = (*FileGenerator)(nil)
)
