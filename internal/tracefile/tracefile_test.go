package tracefile

import (
	"bytes"
	"encoding/binary"
	"io"
	"path/filepath"
	"testing"
	"testing/quick"

	"slb/internal/stream"
	"slb/internal/workload"
)

// drain pulls every key from a generator.
func drain(g stream.Generator) []string {
	var out []string
	for {
		k, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, k)
	}
}

func TestRoundTripBytes(t *testing.T) {
	orig := workload.NewZipf(1.5, 500, 20000, 9)
	var buf bytes.Buffer
	n, err := Write(&buf, orig)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20000 {
		t.Fatalf("wrote %d messages", n)
	}
	g, err := NewBytesGenerator(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 20000 {
		t.Fatalf("Len = %d", g.Len())
	}
	got := drain(g)
	want := drain(orig)
	if len(got) != len(want) {
		t.Fatalf("decoded %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: %q vs %q", i, got[i], want[i])
		}
	}
	// Reset replays identically.
	g.Reset()
	again := drain(g)
	for i := range again {
		if again[i] != want[i] {
			t.Fatalf("reset replay mismatch at %d", i)
		}
	}
}

func TestRoundTripFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.slbt")
	orig := workload.NewZipf(1.2, 100, 5000, 3)
	if _, err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	g, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got := drain(g)
	want := drain(orig)
	if len(got) != 5000 {
		t.Fatalf("decoded %d", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
	g.Reset()
	if k, ok := g.Next(); !ok || k != want[0] {
		t.Fatal("file Reset did not rewind")
	}
}

func TestStatsPreserved(t *testing.T) {
	orig := workload.NewZipf(2.0, 1000, 30000, 5)
	var buf bytes.Buffer
	if _, err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	g, err := NewBytesGenerator(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	a := stream.Collect(orig)
	b := stream.Collect(g)
	if a != b {
		t.Fatalf("stats changed through trace: %+v vs %+v", a, b)
	}
}

func TestCompression(t *testing.T) {
	// A skewed 100k-message stream should cost well under 4 bytes/msg.
	orig := workload.NewZipf(1.4, 10000, 100000, 1)
	var buf bytes.Buffer
	if _, err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	if perMsg := float64(buf.Len()) / 100000; perMsg > 4 {
		t.Fatalf("trace costs %.2f bytes/message", perMsg)
	}
}

func TestCorruptHeader(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"short":       []byte("SL"),
		"bad magic":   append([]byte("XXXX"), make([]byte, 12)...),
		"bad version": append([]byte("SLBT"), make([]byte, 12)...),
	}
	// "bad version" has version 0; valid magic.
	for name, data := range cases {
		if _, err := NewReader(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: header accepted", name)
		}
	}
}

func TestTruncatedBody(t *testing.T) {
	orig := stream.FromSlice([]string{"alpha", "beta", "alpha"})
	var buf bytes.Buffer
	if _, err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var decodeErr error
	for {
		if _, decodeErr = r.Next(); decodeErr != nil {
			break
		}
	}
	if decodeErr == io.EOF {
		t.Fatal("truncated trace decoded cleanly to EOF")
	}
}

func TestSkippedDictionaryID(t *testing.T) {
	// Handcraft a trace whose first message references id 1 (invalid:
	// dictionary is empty, so only id 0 = new key is legal).
	var buf bytes.Buffer
	buf.WriteString(Magic)
	hdr := make([]byte, 12)
	hdr[0] = Version
	hdr[4] = 1 // one message
	buf.Write(hdr)
	buf.WriteByte(1) // varint id 1
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("dictionary-skipping id accepted")
	}
}

func TestDeclaredAndKeys(t *testing.T) {
	orig := stream.FromSlice([]string{"a", "b", "a"})
	var buf bytes.Buffer
	if _, err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Declared() != 3 {
		t.Fatalf("Declared = %d", r.Declared())
	}
	for {
		if _, err := r.Next(); err != nil {
			break
		}
	}
	if r.Keys() != 2 {
		t.Fatalf("Keys = %d, want 2", r.Keys())
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		keys := make([]string, len(raw))
		for i, b := range raw {
			// Include empty and multi-byte keys.
			keys[i] = string(bytes.Repeat([]byte{'x'}, int(b%5)))
		}
		var buf bytes.Buffer
		if _, err := Write(&buf, stream.FromSlice(keys)); err != nil {
			return false
		}
		g, err := NewBytesGenerator(buf.Bytes())
		if err != nil {
			return false
		}
		got := drain(g)
		if len(got) != len(keys) {
			return false
		}
		for i := range got {
			if got[i] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorNextBatchMatchesNext(t *testing.T) {
	gen := workload.NewZipf(1.4, 300, 5000, 3)
	var buf bytes.Buffer
	if _, err := Write(&buf, gen); err != nil {
		t.Fatal(err)
	}
	seq, err := NewBytesGenerator(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	bat, err := NewBytesGenerator(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	slab := make([]string, 129)
	var pos int
	for {
		n := bat.NextBatch(slab)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			want, ok := seq.Next()
			if !ok {
				t.Fatalf("sequential trace ended early at %d", pos)
			}
			if slab[i] != want {
				t.Fatalf("message %d = %q, want %q", pos, slab[i], want)
			}
			pos++
		}
	}
	if _, ok := seq.Next(); ok {
		t.Fatal("batch trace ended early")
	}
}

// traceVals derives a deterministic, sign-varying payload from key and
// sequence — the kind of sample AggValue hooks used to compute at
// replay time and version-2 traces now record.
func traceVals(key string, seq int64) int64 {
	v := int64(len(key))*37 + seq%101
	if seq%3 == 0 {
		v = -v
	}
	return v
}

func TestRoundTripValues(t *testing.T) {
	orig := stream.WithValues(workload.NewZipf(1.5, 200, 8000, 11), traceVals)
	var buf bytes.Buffer
	n, err := Write(&buf, orig)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8000 {
		t.Fatalf("wrote %d messages", n)
	}
	g, err := NewBytesGenerator(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasValues() {
		t.Fatal("value-bearing trace reports HasValues() == false")
	}
	keys := make([]string, 97)
	vals := make([]int64, 97)
	var seq int64
	for {
		n := g.NextBatchValues(keys, vals)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			if want := traceVals(keys[i], seq); vals[i] != want {
				t.Fatalf("message %d value = %d, want %d", seq, vals[i], want)
			}
			seq++
		}
	}
	if seq != 8000 {
		t.Fatalf("decoded %d messages", seq)
	}
	// The key sequence must be unchanged by the value column.
	g.Reset()
	orig.Reset()
	got, want := drain(g), drain(orig)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key mismatch at %d: %q vs %q", i, got[i], want[i])
		}
	}
}

func TestRoundTripValuesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vals.slbt")
	orig := stream.WithValues(workload.NewZipf(1.2, 50, 3000, 4), traceVals)
	if _, err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	g, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if !g.HasValues() {
		t.Fatal("file trace reports HasValues() == false")
	}
	sum := func() int64 {
		keys := make([]string, 64)
		vals := make([]int64, 64)
		var s int64
		for {
			n := g.NextBatchValues(keys, vals)
			if n == 0 {
				return s
			}
			for _, v := range vals[:n] {
				s += v
			}
		}
	}
	first := sum()
	g.Reset()
	if again := sum(); again != first {
		t.Fatalf("value sum changed across Reset: %d vs %d", again, first)
	}
}

func TestVersion1StillReadable(t *testing.T) {
	// A key-only generator must keep producing version-1 traces (the
	// bytes existing tooling and committed traces expect), and their
	// replay supplies the constant 1 through the value-aware paths.
	var buf bytes.Buffer
	if _, err := Write(&buf, workload.NewZipf(1.3, 40, 1000, 2)); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(buf.Bytes()[4:8]); v != 1 {
		t.Fatalf("key-only trace written as version %d", v)
	}
	g, err := NewBytesGenerator(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if g.HasValues() {
		t.Fatal("version-1 trace reports HasValues() == true")
	}
	if stream.Values(g) != nil {
		t.Fatal("stream.Values must reject a version-1 replay")
	}
	keys := make([]string, 1000)
	vals := make([]int64, 1000)
	if n := g.NextBatchValues(keys, vals); n != 1000 {
		t.Fatalf("decoded %d messages", n)
	}
	for i, v := range vals {
		if v != 1 {
			t.Fatalf("message %d value = %d, want the constant 1", i, v)
		}
	}
}

func TestTruncatedValueColumn(t *testing.T) {
	orig := stream.WithValues(stream.FromSlice([]string{"alpha", "beta"}), traceVals)
	var buf bytes.Buffer
	if _, err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	// Drop the final byte (the last message's value varint).
	r, err := NewReader(bytes.NewReader(buf.Bytes()[:buf.Len()-1]))
	if err != nil {
		t.Fatal(err)
	}
	var decodeErr error
	for {
		if _, _, decodeErr = r.NextValue(); decodeErr != nil {
			break
		}
	}
	if decodeErr == io.EOF {
		t.Fatal("truncated value column decoded cleanly to EOF")
	}
}
