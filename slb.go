// Package slb is a Go implementation of the load-balancing stream
// partitioners from "When Two Choices Are not Enough: Balancing at Scale
// in Distributed Stream Processing" (Nasir, De Francisci Morales,
// Kourtellis, Serafini — ICDE 2016), together with the substrates needed
// to reproduce the paper end to end: the SpaceSaving heavy-hitter
// sketch, skewed workload generators, a multi-source partitioning
// simulator, and two DSPE engines (a deterministic discrete-event
// queueing simulator and a concurrent goroutine runtime).
//
// # The algorithms
//
// A stream of keyed messages is partitioned from sources to n workers.
//
//   - KG (key grouping) hashes each key to one worker; a skewed key
//     distribution overloads whoever owns the hottest key.
//   - SG (shuffle grouping) round-robins messages: perfectly balanced
//     but every worker may hold state for every key.
//   - PKG (partial key grouping) gives each key two candidate workers
//     and routes to the less loaded — enough only while p1 ≤ 2/n.
//   - D-Choices and W-Choices — this paper's contribution — detect the
//     hot keys online with a SpaceSaving sketch and give only those keys
//     more than two choices: W-Choices all n workers, D-Choices the
//     minimal d from an analytic feasibility bound (Proposition 4.1).
//
// # Quick start
//
// The hot path is batched end to end: draw a slab of keys from a
// generator and route it in one call. Every message is hashed exactly
// once into a 64-bit KeyDigest — at the source, when routing — and that
// digest then follows the message through its whole life: candidate
// workers, the heavy-hitter sketch, both engines' tuples, the windowed
// aggregation tables and the reducer's merges all operate on the
// carried digest (source → route → aggregate → reduce), never
// re-scanning the key bytes.
//
//	cfg := slb.Config{Workers: 50, Seed: 42}
//	p := slb.NewDChoices(cfg)
//	gen := slb.NewZipfStream(2.0, 100_000, 1_000_000, 42)
//
//	keys := make([]string, 512)
//	dst := make([]int, 512)
//	for {
//		n := slb.NextBatch(gen, keys)
//		if n == 0 {
//			break
//		}
//		slb.RouteBatch(p, keys[:n], dst)
//		// dst[i] is the worker for keys[i], identical to p.Route(keys[i])
//	}
//
// The per-message form remains for single tuples:
//
//	worker := p.Route("some-key") // → 0..49, state updated
//
// RouteBatch makes exactly the decisions per-message Route would — the
// batch is an amortization, not an approximation. Steady-state routing
// allocates nothing for every algorithm; the one exception is
// D-Choices' periodic d-solver, which allocates a few hundred bytes
// once per Config.SolveEvery messages (amortized ≈ 0 per message).
//
// Callers that aggregate (or otherwise need the key digests) use
// RouteBatchDigests instead: the same routing, with the digests the
// router computed written into a caller-owned slab, so the downstream
// stages reuse them rather than paying a second key scan. The
// per-message analogue is RouteDigest for a digest already in hand.
//
// Each Partitioner instance embodies one sender: load estimates are
// sender-local (no coordination), exactly as in the paper. To compare
// algorithms under identical streams, use Simulate with a deterministic
// Generator from NewZipfStream or the dataset stand-ins.
//
// # Two-phase aggregation
//
// Key splitting buys balance at the price of an aggregation phase:
// when a key's messages land on d workers, each holds only a partial
// aggregate and a reduce stage must merge the d partials per window.
// Both engines model this end to end — set EngineConfig.AggWindow
// (goroutine runtime) or ClusterConfig.AggWindow (deterministic event
// simulation) and read the measured cost from Result.Agg: partial
// traffic, merge work, reducer memory, and the exact replication
// factor (1 for KG, up to n for W-Choices). Pipelines compose the same
// phases explicitly via AddWindowedAggregate, AddWindowedMerge and
// AddWeightedStage. Partials merge across workers by the CARRIED
// KeyDigest: routing digests each key once at the source, the engines'
// tuples and flushed partials transport that digest, and the reduce
// stage merges by it — no layer re-hashes (see internal/aggregation).
//
// WHAT is merged per (window, key) is pluggable: the Merger operator
// (CountMerger by default; SumMerger, MinMerger, MaxMerger and the
// approximate-distinct DistinctMerger built in, custom operators
// welcome) rides inside the partial tables as a fixed 128-bit state,
// so non-count aggregations keep the zero-allocation steady state.
// Select it with AggMerger and derive each message's merged sample
// with AggValue on either engine; message COUNTS are tracked alongside
// regardless, because they drive the completeness-based window close.
//
// The reduce stage itself is sharded and modeled, not free
// bookkeeping. AggShards (both engines) splits it into R independent
// reducer stations keyed by the carried digest (a key's partials
// always meet at exactly one shard), and each shard closes its slice
// of a window the instant it has merged every message the sources
// emitted into it — per-shard thresholds are counted at routing time,
// so duplicates and late corrections remain structurally impossible.
// In the discrete-event engine each merged partial costs
// ClusterConfig.AggMergeCost of its shard's service through a bounded
// per-shard queue whose backpressure stalls flushing workers: a
// saturated reduce stage degrades end-to-end throughput exactly as a
// hot worker does, and adding shards moves the saturation point
// (stage capacity = AggShards/AggMergeCost partials per ms).
// ClusterResult.ReducerUtil reports the busiest shard's utilization
// (ReducerUtilMean the average — near-1 max at R=1 is the regime where
// W-Choices' extra partials outweigh its balance gain), and
// EngineResult.AggReducerUtil / AggReducerUtilMean are the goroutine
// runtime's wall-clock equivalents, with EngineConfig.AggMergeCost
// available to reproduce the reducer-bound regime in wall-clock runs.
//
// # The goroutine engine's dataplanes
//
// The goroutine runtime executes one topology — spouts route a keyed
// stream into bolts, bolts flush windowed partials toward R reducer
// shards — over either of two tuple transports, selected by
// EngineConfig.Dataplane / PipelineConfig.Dataplane:
//
//   - DataplaneChannel (the default): bounded Go channels, one shared
//     MPSC inbox per executor, tuples moving in per-batch slabs and the
//     in-flight ack window implemented as a semaphore channel.
//   - DataplaneRing: every (sender, receiver) edge gets its own
//     lock-free single-producer/single-consumer ring buffer
//     (internal/ring — power-of-two capacity, cache-line-padded
//     cursors, cached-sequence fast path, batched Grant/Publish and
//     Acquire/Release windows). The ring slots ARE the tuple arena:
//     tuples are written and read in place, no slab is allocated, and
//     the zero-allocation steady state extends from routing to the
//     whole spout→bolt→reducer tuple path. Acks become one padded
//     atomic in-flight counter per source, bumped per slab and
//     decremented per consumed batch.
//
// The ring plane also restructures the shard hop through a worker-side
// COMBINER TREE: bolts push flushed partials into per-shard trees
// (fan-in 8) whose interior nodes pre-merge same-(window, key)
// partials through the pluggable Merger — exact, because the Merger is
// a commutative, associative fold — and whose per-shard roots buffer
// to window completeness, so each reducer shard merges roughly one
// combined partial per (window, key) instead of one per (window, key,
// worker): the reduce stage's merge traffic drops from the replication
// factor to ≈ 1 (EngineResult.AggBoltPartials vs Agg.Partials measures
// the cut). Everything observable is pinned across dataplanes — window
// close, hash-once digest carry, finals, and replication factors are
// bit-identical — so the selector doubles as an A/B harness:
// BenchmarkPipelineThroughput measures the ring plane at ≈ 1.6x the
// channel baseline on the raw tuple path and ≥ 2x in the reducer-bound
// reference regime (AggShards = 4, 50 µs merge cost), where the
// combiner tree's traffic cut is structural.
//
// # Transport
//
// The goroutine runtime can also leave the single process: setting
// EngineConfig.Transport routes the spout→bolt and bolt→shard hops
// through internal/transport, a batched per-edge message layer with
// explicit flush/drain semantics (Sender.SendSlab/Flush/Close on the
// write side, non-blocking Receiver.RecvSlab polls on the read side).
// Two backends ship:
//
//   - TransportMemory runs the interface over the same SPSC rings as
//     DataplaneRing — including a zero-copy Grant/Publish fast path
//     that stages outgoing messages directly in the ring slots — so it
//     prices exactly the interface boundary: zero allocations per
//     operation in steady state and within ~5% of the direct ring
//     plane's pipeline throughput (≈0.97x measured means).
//   - TransportTCP moves every edge over a real socket (loopback in
//     the tests and benchmarks) speaking wire format v2: COLUMNAR
//     length-prefixed frames (per-field columns with varint/zigzag
//     coding, delta-coded windows, elided all-zero and uniform
//     columns, a sparse emit column) over a PERSISTENT per-link key
//     dictionary — a hot key's bytes and digest cross the wire once
//     per dictionary epoch, and every later occurrence is a 1-2 byte
//     reference (≈2-4 B per steady-state message, vs ≈8 B for the
//     PR-8 record layout; epoch resets bound the dictionary at 32k
//     entries and a frame-carried epoch counter turns any
//     desynchronization into a hard decode error). The sender is
//     pipelined: the caller's goroutine encodes into ~32 KB
//     coalescing buffers while a writer goroutine drives the kernel
//     with vectored writes, and the receive side decodes through a
//     per-link key arena into an SPSC ring with zero steady-state
//     allocations (hard-asserted). Per-link telemetry counters cover
//     both directions and the dictionary (transport_tx_bytes_total,
//     transport_rx_bytes_total, transport_tx_msgs_total,
//     transport_frames_total, transport_flushes_total,
//     transport_send_stalls_total, transport_dict_hits_total,
//     transport_dict_resets_total, labeled link=). Spouts flush
//     lazily — only when the in-flight ack window is about to block —
//     and when EngineConfig.Window is left at its default the TCP
//     plane grows each spout's ack window adaptively (doubling on ack
//     stalls up to 8192, published as spout_ack_window) instead of
//     staying ack-latency bound at 100. Sustained loopback link
//     throughput is ≈34M msgs/s single-core (≈2.2x the PR-8 record
//     codec on the same host and harness).
//
// The TCP backend is fault-tolerant: a link survives its connection
// dying at ANY byte boundary with exactness intact. Every coalescing
// buffer carries a sequence number and the receiver streams back
// cumulative acks; the sender retains a bounded window of unacked
// buffers (TCPConfig.RetainedBufs) and, when a connection dies — a
// write error, a receiver-detected sequence gap, or an ack timeout
// (TCPConfig.ResendTimeout) — redials under jittered exponential
// backoff (TCPConfig.RedialBackoff/RedialAttempts, episodes capped by
// TCPConfig.MaxReconnects), resets the frame codec's dictionary epoch
// (the documented resync point: a fresh connection always starts a
// fresh epoch, so mid-epoch loss can never desynchronize the
// dictionaries), and replays from the receiver's high-water mark. Each
// accepted connection opens with a resync handshake — the receiver
// acks its current mark before any data flows, the sender applies it
// before retransmitting — so delivery is at-least-once on the wire and
// exactly-once observable: the receiver's persistent sequence state
// discards duplicate frames at the receive edge, and finals,
// replication factors and completed counts stay bit-equal to a
// fault-free run (pinned by dspe's fault-parity tests with every link
// severed and ≥1% of frames dropped). With reconnection disabled
// (MaxReconnects < 0) a lost connection is a hard per-link error —
// never silent loss. transport.Chaos wraps either backend with a
// deterministic fault schedule (ChaosConfig: seeded frame drops,
// periodic connection severs, accept delays) and exposes a per-link
// injected-fault ledger; the recovery machinery publishes its own
// counters (transport_reconnects_total,
// transport_retransmit_frames_total, transport_retransmit_bytes_total,
// transport_dup_msgs_dropped_total, transport_outage_seconds), which
// the soak harness carries as JSONL fields and the transport
// experiment tabulates. The fault-free bill for all of this —
// sequencing, buffer retention, ack tracking — is within ~5% of the
// pre-fault-tolerance link throughput (BenchmarkResendOverhead).
//
// Everything observable — finals, replication factors, completed
// counts — is bit-identical across TransportDirect, TransportMemory
// and TransportTCP at Sources = 1, pinned by dspe's parity tests. The
// deterministic engine prices the same hop analytically:
// ClusterConfig.LinkDelay (with LinkJitter and the rare
// LinkSlowOneIn/LinkSlowPenalty slow path, all hash-derived and
// bit-reproducible) charges each flushed partial a worker→reducer
// link delay, so an algorithm's sensitivity to wire latency scales
// with its replication factor — at 2 ms, W-Choices loses ≈1.6x where
// KG loses ≈1.05x. ClusterConfig.LinkOutagePeriod/LinkOutageDuration
// add periodic per-link outage windows (staggered by a hash-derived
// phase): a partial arriving while its link is dark is lost and
// retransmitted on recovery, charged as a deferred arrival in the
// closed-form recurrence and reported as
// ClusterResult.LinkRetransmits/LinkOutageWaitMs — the analytic
// analogue of the live chaos schedule. The `transport` experiment
// (cmd/slbstorm) sweeps all of it: dataplane throughput with the TCP
// wire ledger, degraded-link throughput and retransmission cost per
// algorithm under chaos, and the per-algorithm delay and outage
// sensitivity.
//
// # Telemetry
//
// Every engine can publish its live metric series into a label-aware
// registry (internal/telemetry): pass a telemetry.NewRegistry() as
// EngineConfig.Telemetry or ClusterConfig.Telemetry and read it with
// Registry.Snapshot() — safe concurrently with the run — or the
// snapshot's WriteText/WriteJSON renderings. Series are identified by
// name plus labels; every series carries engine=<name> and
// algo=<algorithm>, with per-instance labels (spout=, worker=, shard=)
// where the source is per-goroutine. Counters and histograms are
// monotonic over a run; Snapshot.Delta(prev) turns two snapshots into
// interval rates. Results are bit-identical with and without a
// registry attached — instrumentation rides the existing batch
// boundaries (the routing hot path keeps its zero-allocation
// steady state; BenchmarkRouteBatchDigestsInstrumented asserts it).
//
// The goroutine runtime (engine=dspe-channel / engine=dspe-ring)
// publishes per spout route_msgs_total, route_ns_total,
// route_batches_total and spout_ack_wait_ns_total (the ring plane adds
// publish_stall_ns_total); per worker a queue_depth gauge — channel
// backlog on the channel plane, ring occupancy on the ring plane —
// plus bolt_msgs_total, bolt_partials_total and (ring)
// acquire_stall_ns_total; and per reducer shard reduce_partials_total,
// reduce_busy_ns_total and the reduce_open_windows /
// reduce_live_entries / reduce_live_replicas occupancy gauges. The
// discrete-event engine (engine=eventsim) publishes the same routing
// series plus sim_emitted_total, sim_completed_total, sim_clock_ns,
// per-worker queue_depth and sim_peak_queue, flush_stall_ns_total, and
// the per-shard reducer series — every duration measured in SIMULATED
// nanoseconds, so interval rates are deterministic. The full series
// inventory lives in internal/dspe/telemetry.go and
// internal/eventsim/telemetry.go.
//
// cmd/slbsoak drives all of this as a soak harness: drifting workloads
// (NewDriftStream) cycled across eventsim, both dspe dataplanes and
// (with -tcp, default under -short) the loopback TCP transport for
// minutes to hours, each leg's registry sampled on an interval into
// JSONL rows (per-shard reducer utilization, queue depths, routing
// rates, stalls), a per-engine summary written as a BENCH_soak JSON
// artifact carrying its configuration string in "meta", and — given
// -baseline — a nonzero exit when throughput regresses against the
// best matching baseline in the accumulated trajectory (CI gates on
// the deterministic eventsim row; see ci/BENCH_soak_baseline.json).
//
// # Balancing at scale
//
// The paper's title regime — hundreds to tens of thousands of workers —
// is fully supported. Worker counts are unbounded (the former 65536
// cap is gone), and the head-aware schemes' argmin over worker loads is
// backed by an adaptive LOAD INDEX: below a measured crossover of
// n = 128 it is the packed conditional-move scan (scan and tree run
// neck-and-neck at n = 64; the scan wins below, the tree clearly above
// — ≈2x at n = 256), and from the crossover up it is a flat-array
// tournament tree with O(1) argmin reads and O(log n) updates, with
// tie-breaking bit-exact to the scans — so W-Choices head routing
// stays near-flat (≈110–150 ns/msg on the reference machine) from
// n = 256 to n = 16384 while the scan grows linearly to ≈10 µs/msg
// (BenchmarkRouteAtScale and the `scale` experiment's routing table;
// ≈69x at n = 16384).
// D-Choices' large-d candidate evaluation amortizes through a
// set-associative candidate cache whose entries serve a window of d
// values (the solver's d jitters ±1; deduplicated candidate lists for
// smaller d are prefixes of larger ones, so one derivation serves the
// window bit-exactly) and a per-run candidate tournament; its cost is
// O(c) per run of a head key, c being the deduplicated candidate
// count — when the solver drives c toward n, W-Choices is the faster
// strategy, exactly as the paper prescribes (D-C switches to W-C at
// d ≥ n). All of this preserves the zero-allocation steady state, and
// Config.LoadIndex (LoadIndexAuto/LoadIndexScan/LoadIndexTree) pins
// the selection for measurement.
//
// The `scale` experiment (cmd/slbstorm) reproduces the large-deployment
// story end to end at n ∈ {16 … 16384} × {KG, PKG, D-C, W-C, SG}:
// routing ns/msg scan vs tree, imbalance at scale (PKG grows with n —
// e.g. 4.0e-6 → 1.9e-2 at z = 0.8 — while D-C/W-C hold ≈1e-5), and
// discrete-event throughput (PKG plateaus at its two hot-key workers'
// drain rate from n = 64 on, D-C/W-C keep the offered rate at every n).
// CI emits these tables per run as BENCH_*.json artifacts.
package slb

import (
	"io"

	"slb/internal/aggregation"
	"slb/internal/analysis"
	"slb/internal/core"
	"slb/internal/dspe"
	"slb/internal/eventsim"
	"slb/internal/metrics"
	"slb/internal/simulator"
	"slb/internal/spacesaving"
	"slb/internal/stream"
	"slb/internal/tracefile"
	"slb/internal/workload"
)

// Partitioner routes each message of a keyed stream to one of n workers.
type Partitioner = core.Partitioner

// BatchPartitioner is a Partitioner with a batched fast path: RouteBatch
// routes a slab of keys making the same decision for every message that
// per-message Route would. All partitioners in this module implement it.
type BatchPartitioner = core.BatchPartitioner

// DigestBatchPartitioner is a BatchPartitioner whose batch path hands
// the caller the digests routing computed (see RouteBatchDigests). All
// partitioners in this module implement it.
type DigestBatchPartitioner = core.DigestBatchPartitioner

// DigestRouter is a partitioner that routes a message whose key is
// already digested (see RouteDigest). All partitioners in this module
// implement it.
type DigestRouter = core.DigestRouter

// KeyDigest is the canonical 64-bit digest of a key: every message is
// hashed once, at the source, and all later layers (candidate choice,
// sketches, engines, aggregation tables) identify keys by that carried
// digest. Same digest → same candidates, on every sender.
type KeyDigest = core.KeyDigest

// DigestKey returns the canonical digest of a key (one scan of its
// bytes).
func DigestKey(key string) KeyDigest { return core.Digest(key) }

// RouteBatch routes keys[i] to dst[i] through p, using its native batch
// path when available and falling back to per-message Route otherwise.
// dst must be at least as long as keys.
func RouteBatch(p Partitioner, keys []string, dst []int) { core.RouteBatch(p, keys, dst) }

// RouteBatchDigests routes keys[i] to dst[i] through p and fills
// digs[i] with DigestKey(keys[i]) — the digest routing itself computed,
// handed to the caller so aggregation and re-keying downstream reuse it
// instead of scanning the key bytes again (the hash-once lifecycle:
// source → route → aggregate → reduce). digs and dst must be at least
// as long as keys. Routing decisions are identical to RouteBatch.
func RouteBatchDigests(p Partitioner, keys []string, digs []KeyDigest, dst []int) {
	core.RouteBatchDigests(p, keys, digs, dst)
}

// RouteDigest routes one message through p by its carried digest; dg
// must equal DigestKey(key). This is the per-message half of the
// hash-once lifecycle, for callers (engines, pipelines) whose tuples
// already carry the digest.
func RouteDigest(p Partitioner, dg KeyDigest, key string) int {
	return core.RouteDigest(p, dg, key)
}

// Config carries the partitioner parameters (Table III of the paper):
// worker count, hash seed, head threshold θ (default 1/(5n)), solver
// tolerance ε (default 1e-4), sketch capacity, solve cadence, and the
// load-index selection (see LoadIndexAuto).
type Config = core.Config

// Config.LoadIndex values: how the head-aware schemes compute the
// argmin over worker loads (the W-Choices head path routes EVERY head
// message to the globally least-loaded worker). LoadIndexAuto — the
// default — uses a packed conditional-move scan below the measured
// crossover (n = 128) and a flat-array tournament tree (O(1) argmin
// read, O(log n) update per message) at or above it, which keeps head
// routing roughly flat in n up to tens of thousands of workers.
// Routing decisions are bit-identical in every mode; only cost
// changes. LoadIndexScan forces the scan (requires Workers < 65536 —
// the packed encoding's limit, which is also why worker counts beyond
// 65536 are supported only through the tree); LoadIndexTree forces the
// tree. See the `scale` experiment for measured numbers.
const (
	LoadIndexAuto = core.LoadIndexAuto
	LoadIndexScan = core.LoadIndexScan
	LoadIndexTree = core.LoadIndexTree
)

// Algorithms lists the paper's algorithm symbols in presentation order:
// KG, SG, PKG, D-C, W-C, RR.
var Algorithms = core.Names

// New constructs a partitioner by its paper symbol (see Algorithms).
func New(name string, cfg Config) (Partitioner, error) { return core.New(name, cfg) }

// NewKeyGrouping returns the KG baseline: one hashed worker per key.
func NewKeyGrouping(cfg Config) Partitioner { return core.NewKeyGrouping(cfg) }

// NewShuffleGrouping returns the SG baseline: round-robin, key-oblivious.
func NewShuffleGrouping(cfg Config) Partitioner { return core.NewShuffleGrouping(cfg) }

// NewPKG returns Partial Key Grouping: the power of two choices.
func NewPKG(cfg Config) Partitioner { return core.NewPKG(cfg) }

// NewDChoices returns the paper's D-Choices partitioner: head keys get
// the minimal d ≥ 2 choices that satisfies Proposition 4.1.
func NewDChoices(cfg Config) Partitioner { return core.NewDChoices(cfg) }

// NewWChoices returns the paper's W-Choices partitioner: head keys may
// go to any worker.
func NewWChoices(cfg Config) Partitioner { return core.NewWChoices(cfg) }

// NewRoundRobin returns the RR baseline: head keys round-robin over all
// workers, load-obliviously.
func NewRoundRobin(cfg Config) Partitioner { return core.NewRoundRobin(cfg) }

// ---------------------------------------------------------------------------
// Streams and workloads

// Generator produces a finite, deterministic key stream.
type Generator = stream.Generator

// BatchGenerator is a Generator with a batched emission fast path. All
// generators in this module implement it.
type BatchGenerator = stream.BatchGenerator

// NextBatch pulls up to len(dst) keys from gen (batched when the
// generator supports it) and returns the count; 0 means exhausted.
func NextBatch(gen Generator, dst []string) int { return stream.NextBatch(gen, dst) }

// Stats summarizes a stream (Table I columns: messages, keys, p1).
type Stats = stream.Stats

// CollectStats measures a generator's exact statistics.
func CollectStats(gen Generator) Stats { return stream.Collect(gen) }

// StreamFromKeys adapts a fixed key slice to a Generator.
func StreamFromKeys(keys []string) Generator { return stream.FromSlice(keys) }

// NewZipfStream returns a Zipf-distributed stream: exponent z over
// `keys` distinct keys, `messages` total, deterministic in seed. Any
// z ≥ 0 is supported (z = 0 is uniform).
func NewZipfStream(z float64, keys int, messages int64, seed uint64) Generator {
	return workload.NewZipf(z, keys, messages, seed)
}

// NewDriftStream returns a stream whose hot keys rotate every epochLen
// messages (concept drift, like the paper's cashtag dataset).
func NewDriftStream(z float64, keys int, messages, epochLen int64, stride int, seed uint64) Generator {
	return workload.NewDrift(z, keys, messages, epochLen, stride, seed)
}

// Dataset returns one of the paper's dataset stand-ins by symbol:
// "WP" (Wikipedia page visits), "TW" (Twitter words), or "CT" (cashtags
// with concept drift).
func Dataset(symbol string, seed uint64) (Generator, bool) {
	return workload.DatasetByName(symbol, workload.Default, seed)
}

// ---------------------------------------------------------------------------
// Traces

// WriteTrace encodes a generator's full stream into the compact binary
// trace format (see internal/tracefile) and returns the message count.
func WriteTrace(w io.Writer, gen Generator) (int64, error) {
	return tracefile.Write(w, gen)
}

// WriteTraceFile encodes a generator's stream into a new trace file.
func WriteTraceFile(path string, gen Generator) (int64, error) {
	return tracefile.WriteFile(path, gen)
}

// OpenTrace opens a trace file as a replayable Generator; close it via
// the returned generator's Close method when done.
func OpenTrace(path string) (*tracefile.FileGenerator, error) {
	return tracefile.OpenFile(path)
}

// TraceFromBytes replays an in-memory trace as a Generator.
func TraceFromBytes(data []byte) (*tracefile.BytesGenerator, error) {
	return tracefile.NewBytesGenerator(data)
}

// ---------------------------------------------------------------------------
// Simulation

// SimOptions configures a Simulate run (sources, snapshots, replica
// tracking, head/tail split, distributed sketch merging).
type SimOptions = simulator.Options

// SimResult is the outcome of a Simulate run: final imbalance I(m),
// optional time series, per-worker loads, measured memory.
type SimResult = simulator.Result

// Simulate partitions gen across workers through per-source instances
// of the named algorithm and measures load imbalance, exactly like the
// paper's simulator.
func Simulate(gen Generator, algorithm string, cfg Config, opts SimOptions) (SimResult, error) {
	return simulator.Run(gen, algorithm, cfg, opts)
}

// ---------------------------------------------------------------------------
// Engines

// ClusterConfig configures the deterministic discrete-event cluster
// simulation (the stand-in for the paper's Storm deployment).
type ClusterConfig = eventsim.Config

// ClusterResult reports simulated throughput, latency percentiles and
// load imbalance.
type ClusterResult = eventsim.Result

// SimulateCluster runs the discrete-event DSPE: FIFO workers with fixed
// service time, closed-loop sources with an in-flight window.
func SimulateCluster(gen Generator, cfg ClusterConfig) (ClusterResult, error) {
	return eventsim.Run(gen, cfg)
}

// EngineConfig configures the concurrent goroutine runtime (bounded
// channels, ack-based windows, wall-clock measurement).
type EngineConfig = dspe.Config

// Dataplane selects how the goroutine runtime moves tuples between its
// stages (EngineConfig.Dataplane / PipelineConfig.Dataplane). Both
// planes execute the same topology and produce bit-identical results.
type Dataplane = dspe.Dataplane

// The goroutine runtime's dataplanes. DataplaneChannel — the default —
// uses bounded Go channels (one shared MPSC inbox per executor).
// DataplaneRing replaces every edge with per-(sender, receiver)
// lock-free SPSC ring buffers whose slots double as the tuple arena,
// and pre-merges same-host bolt partials through a worker-side
// combiner tree before the shard hop to the reducers.
const (
	DataplaneChannel = dspe.DataplaneChannel
	DataplaneRing    = dspe.DataplaneRing
)

// Transport selects how the goroutine runtime's tuples cross executor
// boundaries (EngineConfig.Transport): direct in-process handoff over
// the selected Dataplane (the default), or the internal/transport
// batched message layer — in-memory rings behind the transport
// interface, or loopback TCP with varint framing and write coalescing.
// Results are bit-identical across transports at Sources = 1; see the
// package doc's Transport section.
type Transport = dspe.Transport

// The goroutine runtime's transports (see Transport).
const (
	TransportDirect = dspe.TransportDirect
	TransportMemory = dspe.TransportMemory
	TransportTCP    = dspe.TransportTCP
)

// EngineResult reports wall-clock throughput and latency of a topology.
type EngineResult = dspe.Result

// RunTopology executes the goroutine DSPE end to end.
func RunTopology(gen Generator, cfg EngineConfig) (EngineResult, error) {
	return dspe.Run(gen, cfg)
}

// Pipeline is a linear multi-stage topology on the goroutine runtime:
// spouts → bolt stages connected by grouped streams, each edge with its
// own grouping scheme. Build with NewPipeline, AddStage,
// AddWindowedAggregate (two-phase partial aggregation) and
// AddWeightedStage (partial-merging reduce), execute with Run.
type Pipeline = dspe.Pipeline

// StageFunc processes one tuple at a bolt stage and may emit keyed
// tuples downstream.
type StageFunc = dspe.StageFunc

// WeightedStageFunc is the reduce-stage form: it sees each tuple's
// window id and weight (a partial count) and emits weighted tuples.
type WeightedStageFunc = dspe.WeightedStageFunc

// PipelineConfig carries engine-level options for a Pipeline run.
type PipelineConfig = dspe.PipelineConfig

// PipelineResult aggregates a Pipeline run: per-stage loads and
// imbalance plus end-to-end latency percentiles.
type PipelineResult = dspe.PipelineResult

// NewPipeline starts a pipeline definition from a spout stage reading
// gen with the given parallelism.
func NewPipeline(gen Generator, spouts int) *Pipeline { return dspe.NewPipeline(gen, spouts) }

// ---------------------------------------------------------------------------
// Two-phase windowed aggregation

// AggFinal is one merged per-(window, key) result emitted by the
// reducer stage of a two-phase aggregation (EngineConfig.OnFinal).
type AggFinal = aggregation.Final

// AggPartial is one worker's windowed partial aggregate — the unit of
// aggregation traffic between the worker and reducer stages.
type AggPartial = aggregation.Partial

// AggStats reports the measured cost of the aggregation phase: partial
// traffic, merge work, finals, late corrections, and the reducer's
// memory high-water marks. Returned in EngineResult.Agg and
// ClusterResult.Agg.
type AggStats = aggregation.ReducerStats

// AggAccumulator is the worker-side windowed partial table (digest
// keyed, open addressing); exported for applications that embed the
// aggregation phase in their own processing loops.
type AggAccumulator = aggregation.Accumulator

// AggReducer merges partials into finals and accounts the cost.
type AggReducer = aggregation.Reducer

// NewAggAccumulator returns an empty worker-side accumulator for the
// given worker index.
func NewAggAccumulator(worker int) *AggAccumulator { return aggregation.NewAccumulator(worker) }

// NewAggReducer returns an empty reducer.
func NewAggReducer() *AggReducer { return aggregation.NewReducer() }

// Merger is the pluggable merge operator of the two-phase aggregation:
// a commutative, associative fold over per-message samples, observed
// incrementally at the workers and combined across workers' partials
// at the reduce stage. Select one via EngineConfig.AggMerger /
// ClusterConfig.AggMerger (with AggValue deriving each message's
// sample), or per pipeline stage via Pipeline.AddWindowedMerge.
type Merger = aggregation.Merger

// MergeValue is a Merger's fixed-size (128-bit) state, carried inline
// in the partial tables and flushed partials so pluggable operators
// keep the zero-allocation steady state.
type MergeValue = aggregation.Value

// The built-in merge operators.
var (
	// CountMerger counts messages (the default everywhere a Merger is
	// not given): Final.Value equals Final.Count.
	CountMerger = aggregation.CountMerger
	// SumMerger sums each message's AggValue sample.
	SumMerger = aggregation.SumMerger
	// MinMerger keeps the smallest sample.
	MinMerger = aggregation.MinMerger
	// MaxMerger keeps the largest sample.
	MaxMerger = aggregation.MaxMerger
	// DistinctMerger estimates the distinct sample count per
	// (window, key) with a compact 16-register HyperLogLog that merges
	// across workers without bias.
	DistinctMerger = aggregation.DistinctMerger
)

// AggShardFor returns the reducer shard among `shards` that the reduce
// stage merges a key digest's partials at (the Lemire reduction both
// engines use when AggShards > 1); exported so applications embedding
// the aggregation phase can co-partition their own reduce stage.
func AggShardFor(dg KeyDigest, shards int) int { return aggregation.ShardFor(dg, shards) }

// ---------------------------------------------------------------------------
// Analysis helpers

// Imbalance computes the paper's metric I = max(load) − avg(load) over
// absolute per-worker loads, as a fraction of the total.
func Imbalance(loads []int64) float64 { return metrics.Imbalance(loads) }

// SolveD runs FINDOPTIMALCHOICES analytically: the minimal number of
// choices d for the given head frequencies (sorted non-increasing),
// tail mass, worker count and tolerance ε. Returns n when the solver
// concludes the system should switch to W-Choices.
func SolveD(headProbs []float64, tailMass float64, n int, eps float64) int {
	return analysis.SolveD(headProbs, tailMass, n, eps)
}

// ZipfProbs returns the probability vector of a finite Zipf
// distribution, hottest first.
func ZipfProbs(z float64, keys int) []float64 { return workload.ZipfProbs(z, keys) }

// HeavyHitterEntry is one monitored key in a heavy-hitter sketch.
type HeavyHitterEntry = spacesaving.Entry

// NewHeavyHitters returns a standalone SpaceSaving sketch, the building
// block the partitioners use for online head detection. Capacity c
// guarantees every key with frequency ≥ 1/c is monitored.
func NewHeavyHitters(capacity int) *spacesaving.Summary { return spacesaving.New(capacity) }
