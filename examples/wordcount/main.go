// Wordcount: the canonical stateful streaming job, run on the goroutine
// DSPE with D-Choices partitioning. Words follow a Zipf distribution (as
// natural language does); each bolt keeps partial counts for the keys it
// receives, and a final aggregation merges the partial states — the
// "reconciliation" step whose cost is proportional to how many workers
// share a key. The example prints the top words, the per-worker load,
// and the replication factor that D-Choices actually paid.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"slb"
)

// vocabulary returns the i-th most frequent "word".
func vocabulary(i int) string {
	common := []string{"the", "of", "and", "to", "a", "in", "is", "it", "you", "that"}
	if i < len(common) {
		return common[i]
	}
	return fmt.Sprintf("word%04d", i)
}

func main() {
	const (
		workers  = 16
		sources  = 4
		keys     = 5_000
		messages = 200_000
		seed     = 7
	)

	// A Zipf(1.1) word stream — roughly English-like (p("the") ≈ 7%).
	zipf := slb.NewZipfStream(1.1, keys, messages, seed)

	// Per-worker partial counts, updated by worker goroutines.
	type shard struct {
		mu     sync.Mutex
		counts map[string]int
	}
	shards := make([]shard, workers)
	for i := range shards {
		shards[i].counts = make(map[string]int)
	}

	// Drive the stream through per-source D-Choices partitioners by hand
	// (the engine in RunTopology does the same; here we want the state).
	parts := make([]slb.Partitioner, sources)
	for i := range parts {
		p, err := slb.New("D-C", slb.Config{Workers: workers, Seed: seed, Instance: i})
		if err != nil {
			log.Fatal(err)
		}
		parts[i] = p
	}
	var wg sync.WaitGroup
	lanes := make([]chan string, sources)
	for s := range lanes {
		lanes[s] = make(chan string, 256)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for rank := range lanes[s] {
				w := parts[s].Route(rank)
				sh := &shards[w]
				sh.mu.Lock()
				sh.counts[rank]++
				sh.mu.Unlock()
			}
		}(s)
	}
	src := 0
	for {
		k, ok := zipf.Next()
		if !ok {
			break
		}
		// Map rank-keys to word strings so the output reads naturally.
		var rank int
		fmt.Sscanf(k, "k%d", &rank)
		lanes[src] <- vocabulary(rank)
		src = (src + 1) % sources
	}
	for _, ch := range lanes {
		close(ch)
	}
	wg.Wait()

	// Aggregation: merge partial counts; track how many workers held
	// state for each word (the replication cost of splitting hot keys).
	total := make(map[string]int)
	replicas := make(map[string]int)
	loads := make([]int64, workers)
	for w := range shards {
		for word, c := range shards[w].counts {
			total[word] += c
			replicas[word]++
			loads[w] += int64(c)
		}
	}

	words := make([]string, 0, len(total))
	for w := range total {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool { return total[words[i]] > total[words[j]] })

	fmt.Println("top words (count, replicas = workers holding partial state):")
	for _, w := range words[:10] {
		fmt.Printf("  %-10s %7d  ×%d\n", w, total[w], replicas[w])
	}

	maxReplicas := 0
	totalReplicas := 0
	for _, r := range replicas {
		totalReplicas += r
		if r > maxReplicas {
			maxReplicas = r
		}
	}
	fmt.Printf("\nload imbalance I(m) = %.6f across %d workers\n", slb.Imbalance(loads), workers)
	fmt.Printf("state replicas: %d total over %d words (max %d, avg %.2f)\n",
		totalReplicas, len(total), maxReplicas, float64(totalReplicas)/float64(len(total)))
	fmt.Println("\nhot words are split across several workers (kept balanced);")
	fmt.Println("the long tail stays on ≤2 workers each, keeping aggregation cheap.")
}
