// Wordcount: the canonical stateful streaming job, run as a REAL
// two-phase topology on the goroutine DSPE. Words follow a Zipf
// distribution (as natural language does) and are partitioned with
// D-Choices; each bolt keeps windowed partial counts and flushes closed
// windows to a SHARDED reduce stage (AggShards parallel reducers, each
// owning the words whose digests map to it), which merges the partials
// — the aggregation phase whose traffic is proportional to how many
// workers share a key — and emits exact per-window finals. The example
// prints the top words (summed over windows, checked against a
// single-node ground truth), the per-bolt load balance, and the
// aggregation bill D-Choices actually paid: partial messages, measured
// replication factor, and reducer memory.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"sort"

	"slb"
)

// vocabulary returns the i-th most frequent "word".
func vocabulary(i int) string {
	common := []string{"the", "of", "and", "to", "a", "in", "is", "it", "you", "that"}
	if i < len(common) {
		return common[i]
	}
	return fmt.Sprintf("word%04d", i)
}

// wordStream adapts the rank-keyed Zipf generator to natural-looking
// word keys (routing is identical: same key ↔ same digest everywhere).
type wordStream struct{ inner slb.Generator }

func (w wordStream) Next() (string, bool) {
	k, ok := w.inner.Next()
	if !ok {
		return "", false
	}
	var rank int
	fmt.Sscanf(k, "k%d", &rank)
	return vocabulary(rank), true
}
func (w wordStream) Len() int64 { return w.inner.Len() }
func (w wordStream) Reset()     { w.inner.Reset() }

func main() {
	const (
		workers  = 16
		sources  = 4
		shards   = 4 // parallel reducer shards (keyed by word digest)
		keys     = 5_000
		messages = 200_000
		window   = 20_000 // tumbling window: 10 windows over the run
		seed     = 7
	)

	// A Zipf(1.1) word stream — roughly English-like (p("the") ≈ 7%).
	words := wordStream{inner: slb.NewZipfStream(1.1, keys, messages, seed)}

	// Single-node ground truth for the exactness check below.
	truth := make(map[string]int64)
	for {
		w, ok := words.Next()
		if !ok {
			break
		}
		truth[w]++
	}
	words.Reset()

	// Final counts, merged by the sharded reduce stage per (window,
	// word); summed over windows here for the top-words report. OnFinal
	// calls are serialized by the engine across the reducer shards, so
	// no locking is needed.
	total := make(map[string]int64)
	windows := make(map[int64]bool)
	res, err := slb.RunTopology(words, slb.EngineConfig{
		Workers:   workers,
		Sources:   sources,
		Algorithm: "D-C",
		Core:      slb.Config{Seed: seed},
		AggWindow: window,
		AggShards: shards,
		OnFinal: func(f slb.AggFinal) {
			// Serialized across reducer shards by the engine.
			total[f.Key] += f.Count
			windows[f.Window] = true
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	ranked := make([]string, 0, len(total))
	for w := range total {
		ranked = append(ranked, w)
	}
	sort.Slice(ranked, func(i, j int) bool { return total[ranked[i]] > total[ranked[j]] })

	fmt.Printf("processed %d words in %v (%.0f words/s)\n\n",
		res.Completed, res.Elapsed.Round(1_000_000), res.Throughput)
	fmt.Println("top words (exact, merged from per-bolt partials):")
	for _, w := range ranked[:10] {
		fmt.Printf("  %-10s %7d\n", w, total[w])
	}

	st := res.Agg
	fmt.Printf("\nload imbalance I(m) = %.6f across %d bolts\n", res.Imbalance, workers)
	fmt.Printf("aggregation bill over %d windows of %d words, reduced by %d shards:\n",
		len(windows), window, shards)
	fmt.Printf("  %d partial messages (%.1f per window), %d merges, %d finals\n",
		st.Partials, float64(st.Partials)/float64(st.WindowsClosed), st.Merges, st.Finals)
	fmt.Printf("  measured replication factor %.3f (KG would pay exactly 1.000)\n", res.AggReplication)
	fmt.Printf("  reducer peak memory: %d live entries over %d open windows\n",
		st.PeakEntries, st.PeakWindows)
	fmt.Printf("  busiest reducer shard merged %.1f%% of the run (mean %.1f%%)\n",
		100*res.AggReducerUtil, 100*res.AggReducerUtilMean)

	// Exactness: sharding the reduce stage changes its topology, never
	// its results — every word's merged total equals the single-node
	// ground truth, word for word.
	if res.AggTotal != res.Completed {
		log.Fatalf("count mismatch: finals sum to %d, processed %d", res.AggTotal, res.Completed)
	}
	if len(total) != len(truth) {
		log.Fatalf("merged %d distinct words, ground truth has %d", len(total), len(truth))
	}
	for w, want := range truth {
		if total[w] != want {
			log.Fatalf("word %q: merged %d, ground truth %d", w, total[w], want)
		}
	}
	fmt.Printf("\nexactness check passed: %d distinct words match the ground truth.\n", len(truth))
	fmt.Println("hot words are split across several bolts (kept balanced); each")
	fmt.Println("reducer shard pays one merge per extra replica — the paper's tradeoff.")
}
