// Trending: a three-stage streaming topology — the two-phase shape the
// paper's evaluation models. Stage one (shuffle-grouped, stateless)
// normalizes raw events into hashtags; stage two (D-Choices, stateful)
// keeps windowed partial counts per hashtag; stage three (key-grouped)
// is the reducer that merges each hashtag's partials into exact
// per-window finals. The hot hashtag would crush a key-grouped counting
// stage; D-Choices splits exactly that key — and this example shows
// what the split costs downstream: the partial tuples stage three must
// merge.
//
//	go run ./examples/trending
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"slb"
)

func main() {
	const (
		spouts    = 4
		normers   = 4  // stage 1 parallelism (stateless)
		counters  = 12 // stage 2 parallelism (stateful partials)
		reducers  = 2  // stage 3 parallelism (merge)
		hashtags  = 3_000
		events    = 120_000
		window    = 12_000 // tumbling window: 10 windows over the run
		seed      = 19
		zTrending = 1.8 // a trending topic dominates
	)

	// Raw events: "user123 check this out #<tag>" with Zipf tags.
	events0 := slb.NewZipfStream(zTrending, hashtags, events, seed)

	var mu sync.Mutex
	counts := map[string]int64{}
	distinct := map[int64]map[string]bool{} // (window, tag) pairs seen

	pipe := slb.NewPipeline(events0, spouts).
		AddStage("normalize", normers, "SG", 0, func(key string, emit func(string)) {
			// Simulate extraction: the spout key is the raw event; the
			// hashtag is its last token, lower-cased.
			raw := "User123 Check This Out #" + strings.ToUpper(key)
			tag := strings.ToLower(raw[strings.LastIndexByte(raw, '#')+1:])
			emit(tag)
		}).
		AddWindowedAggregate("count-partial", counters, "D-C", window).
		AddWeightedStage("merge", reducers, "KG", 0, func(tag string, win int64, count int64, _ func(string, int64)) {
			mu.Lock()
			counts[tag] += count
			if distinct[win] == nil {
				distinct[win] = map[string]bool{}
			}
			distinct[win][tag] = true
			mu.Unlock()
		})

	res, err := pipe.Run(slb.PipelineConfig{Core: slb.Config{Seed: seed}})
	if err != nil {
		log.Fatal(err)
	}

	tags := make([]string, 0, len(counts))
	var totalCounted int64
	for tag := range counts {
		tags = append(tags, tag)
		totalCounted += counts[tag]
	}
	if totalCounted != int64(events) {
		log.Fatalf("count mismatch: merged %d, emitted %d", totalCounted, events)
	}
	sort.Slice(tags, func(i, j int) bool { return counts[tags[i]] > counts[tags[j]] })
	fmt.Println("trending now (exact, merged from windowed partials):")
	for _, tag := range tags[:5] {
		fmt.Printf("  #%-8s %7d  (%.1f%%)\n", tag, counts[tag],
			100*float64(counts[tag])/float64(events))
	}

	fmt.Printf("\nprocessed %d events end-to-end in %v (p99 latency %v)\n",
		res.Emitted, res.Elapsed.Round(1_000_000), res.P99)
	for _, st := range res.Stages {
		fmt.Printf("stage %-13s processed %7d tuples, imbalance %.6f across %d executors",
			st.Name, st.Processed, st.Imbalance, len(st.Loads))
		if st.AggWindows > 0 {
			fmt.Printf("  [flushed %d partials over %d window closes]", st.AggPartials, st.AggWindows)
		}
		fmt.Println()
	}
	var pairs int
	for _, tags := range distinct {
		pairs += len(tags)
	}
	agg := res.Stages[1]
	fmt.Printf("\nthe counting stage stays balanced even though one hashtag carries\n")
	fmt.Printf("half the stream; the bill is the merge stage's %d partial tuples\n", agg.AggPartials)
	fmt.Printf("(%.2f per distinct hashtag-window) — the paper's balance/overhead tradeoff.\n",
		float64(agg.AggPartials)/float64(pairs))
}
