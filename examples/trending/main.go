// Trending: a three-stage streaming topology — the two-phase shape the
// paper's evaluation models — ranking hashtags by total ENGAGEMENT, a
// weighted sum rather than a plain count. Stage one (shuffle-grouped)
// normalizes raw events into hashtags and stamps each with its
// engagement weight; stage two (D-Choices, stateful) folds the weights
// through a Sum merger per (window, hashtag) — windowed weighted
// partials; stage three (key-grouped) is the reduce stage merging each
// hashtag's partial sums into exact per-window finals. The hot hashtag
// would crush a key-grouped counting stage; D-Choices splits exactly
// that key — and this example shows what the split costs downstream
// (the partial tuples stage three must merge) and proves the weighted
// sums still come out EXACT against a single-node ground truth.
//
//	go run ./examples/trending
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"slb"
)

// engagement returns the deterministic weight of one event on a tag
// (likes + reposts, say) — derived from the tag so the single-node
// ground truth is independent of executor interleaving.
func engagement(tag string) int64 {
	return int64(len(tag)%5) + 1
}

// normalize extracts the lower-cased hashtag from a raw event key.
func normalize(key string) string {
	raw := "User123 Check This Out #" + strings.ToUpper(key)
	return strings.ToLower(raw[strings.LastIndexByte(raw, '#')+1:])
}

func main() {
	const (
		spouts    = 4
		normers   = 4  // stage 1 parallelism (stateless)
		counters  = 12 // stage 2 parallelism (stateful weighted partials)
		reducers  = 2  // stage 3 parallelism (merge)
		hashtags  = 3_000
		events    = 120_000
		window    = 12_000 // tumbling window: 10 windows over the run
		seed      = 19
		zTrending = 1.8 // a trending topic dominates
	)

	// Raw events: "user123 check this out #<tag>" with Zipf tags.
	events0 := slb.NewZipfStream(zTrending, hashtags, events, seed)

	// Single-node ground truth: total engagement per tag.
	truth := map[string]int64{}
	var truthTotal int64
	for {
		key, ok := events0.Next()
		if !ok {
			break
		}
		tag := normalize(key)
		truth[tag] += engagement(tag)
		truthTotal += engagement(tag)
	}
	events0.Reset()

	var mu sync.Mutex
	sums := map[string]int64{}
	distinct := map[int64]map[string]bool{} // (window, tag) pairs seen

	pipe := slb.NewPipeline(events0, spouts).
		// Simulate extraction: the spout key is the raw event; the
		// hashtag is its last token, lower-cased, weighted by its
		// engagement — a WEIGHTED emission, so downstream stages see
		// tuples standing for several likes each.
		AddWeightedStage("normalize", normers, "SG", 0,
			func(key string, _ int64, _ int64, emit func(string, int64)) {
				tag := normalize(key)
				emit(tag, engagement(tag))
			}).
		// Windowed weighted partial sums, split by D-Choices: the Sum
		// merger folds each tuple's weight per (window, tag) and flushes
		// one partial-sum tuple per pair at window close.
		AddWindowedMerge("sum-partial", counters, "D-C", window, slb.SumMerger).
		AddWeightedStage("merge", reducers, "KG", 0, func(tag string, win int64, sum int64, _ func(string, int64)) {
			mu.Lock()
			sums[tag] += sum
			if distinct[win] == nil {
				distinct[win] = map[string]bool{}
			}
			distinct[win][tag] = true
			mu.Unlock()
		})

	res, err := pipe.Run(slb.PipelineConfig{Core: slb.Config{Seed: seed}})
	if err != nil {
		log.Fatal(err)
	}

	// Exactness: weighted sums reassemble from the split partials
	// without loss — tag for tag against the ground truth.
	tags := make([]string, 0, len(sums))
	var totalMerged int64
	for tag := range sums {
		tags = append(tags, tag)
		totalMerged += sums[tag]
	}
	if totalMerged != truthTotal {
		log.Fatalf("engagement mismatch: merged %d, ground truth %d", totalMerged, truthTotal)
	}
	if len(sums) != len(truth) {
		log.Fatalf("merged %d distinct tags, ground truth has %d", len(sums), len(truth))
	}
	for tag, want := range truth {
		if sums[tag] != want {
			log.Fatalf("tag %q: merged engagement %d, ground truth %d", tag, sums[tag], want)
		}
	}

	sort.Slice(tags, func(i, j int) bool { return sums[tags[i]] > sums[tags[j]] })
	fmt.Println("trending now (total engagement, exact, merged from windowed weighted partials):")
	for _, tag := range tags[:5] {
		fmt.Printf("  #%-8s %7d  (%.1f%%)\n", tag, sums[tag],
			100*float64(sums[tag])/float64(truthTotal))
	}

	fmt.Printf("\nprocessed %d events end-to-end in %v (p99 latency %v)\n",
		res.Emitted, res.Elapsed.Round(1_000_000), res.P99)
	for _, st := range res.Stages {
		fmt.Printf("stage %-13s processed %7d tuples, imbalance %.6f across %d executors",
			st.Name, st.Processed, st.Imbalance, len(st.Loads))
		if st.AggWindows > 0 {
			fmt.Printf("  [flushed %d partials over %d window closes]", st.AggPartials, st.AggWindows)
		}
		fmt.Println()
	}
	var pairs int
	for _, tags := range distinct {
		pairs += len(tags)
	}
	agg := res.Stages[1]
	fmt.Printf("\nexactness check passed: %d tags match the ground truth to the unit.\n", len(truth))
	fmt.Printf("the summing stage stays balanced even though one hashtag carries\n")
	fmt.Printf("half the stream; the bill is the merge stage's %d partial tuples\n", agg.AggPartials)
	fmt.Printf("(%.2f per distinct hashtag-window) — the paper's balance/overhead tradeoff.\n",
		float64(agg.AggPartials)/float64(pairs))
}
