// Trending: a two-stage streaming topology — the kind of application
// the paper's evaluation models. Stage one (shuffle-grouped, stateless)
// normalizes raw events into hashtags; stage two (D-Choices, stateful)
// maintains per-hashtag counters. The hot hashtag would crush a
// key-grouped second stage; D-Choices splits exactly that key while the
// tail keeps locality. The example prints per-stage load balance and
// end-to-end latency from the pipeline engine.
//
//	go run ./examples/trending
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"slb"
)

func main() {
	const (
		spouts    = 4
		normers   = 4  // stage 1 parallelism (stateless)
		counters  = 12 // stage 2 parallelism (stateful)
		hashtags  = 3_000
		events    = 120_000
		seed      = 19
		zTrending = 1.8 // a trending topic dominates
	)

	// Raw events: "user123 check this out #<tag>" with Zipf tags.
	events0 := slb.NewZipfStream(zTrending, hashtags, events, seed)

	var mu sync.Mutex
	counts := map[string]int{}

	pipe := slb.NewPipeline(events0, spouts).
		AddStage("normalize", normers, "SG", 0, func(key string, emit func(string)) {
			// Simulate extraction: the spout key is the raw event; the
			// hashtag is its last token, lower-cased.
			raw := "User123 Check This Out #" + strings.ToUpper(key)
			tag := strings.ToLower(raw[strings.LastIndexByte(raw, '#')+1:])
			emit(tag)
		}).
		AddStage("count", counters, "D-C", 0, func(tag string, emit func(string)) {
			mu.Lock()
			counts[tag]++
			mu.Unlock()
		})

	res, err := pipe.Run(slb.PipelineConfig{Core: slb.Config{Seed: seed}})
	if err != nil {
		log.Fatal(err)
	}

	tags := make([]string, 0, len(counts))
	for tag := range counts {
		tags = append(tags, tag)
	}
	sort.Slice(tags, func(i, j int) bool { return counts[tags[i]] > counts[tags[j]] })
	fmt.Println("trending now:")
	for _, tag := range tags[:5] {
		fmt.Printf("  #%-8s %7d  (%.1f%%)\n", tag, counts[tag],
			100*float64(counts[tag])/float64(events))
	}

	fmt.Printf("\nprocessed %d events end-to-end in %v (p99 latency %v)\n",
		res.Emitted, res.Elapsed.Round(1_000_000), res.P99)
	for _, st := range res.Stages {
		fmt.Printf("stage %-10s processed %7d tuples, imbalance %.6f across %d executors\n",
			st.Name, st.Processed, st.Imbalance, len(st.Loads))
	}
	fmt.Println("\nthe stateful counting stage stays balanced even though one")
	fmt.Println("hashtag carries half the stream — that is the paper's result.")
}
