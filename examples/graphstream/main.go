// Graphstream: degree counting over a streamed power-law graph — the
// paper's motivating case of *extreme* skew ("some vertices are much
// more popular than others"; with z = 2 the hottest key is ≈60% of the
// stream, so PKG cannot balance any deployment larger than 3 workers).
// The example compares PKG, D-Choices and W-Choices on the discrete-
// event cluster engine and shows throughput, tail latency and imbalance.
//
//	go run ./examples/graphstream
package main

import (
	"fmt"
	"log"

	"slb"
)

func main() {
	const (
		workers  = 40
		sources  = 8
		vertices = 20_000
		edges    = 150_000
		seed     = 11
	)

	// Edge endpoints drawn from a Zipf(2.0) degree distribution: a
	// celebrity vertex dominates, as in social-graph streams.
	gen := slb.NewZipfStream(2.0, vertices, edges, seed)
	stats := slb.CollectStats(gen)
	fmt.Printf("graph stream: %d edge events, %d vertices, hottest vertex %.1f%% of traffic\n\n",
		stats.Messages, stats.Keys, 100*stats.P1)

	fmt.Printf("%-5s  %12s  %12s  %12s  %10s\n",
		"algo", "tput (ev/s)", "p99 (ms)", "max-avg (ms)", "imbalance")
	for _, algo := range []string{"PKG", "D-C", "W-C", "SG"} {
		res, err := slb.SimulateCluster(gen, slb.ClusterConfig{
			Workers:      workers,
			Sources:      sources,
			Algorithm:    algo,
			Core:         slb.Config{Seed: seed},
			ServiceTime:  1.0, // 1 ms per degree update
			EmitInterval: 2.0, // ≈4k offered events/s: the hot pair saturates under PKG
			Window:       100,
			MeasureAfter: edges / 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s  %12.0f  %12.2f  %12.2f  %10.6f\n",
			algo, res.Throughput, res.P99, res.MaxAvgLatency, res.Imbalance)
	}

	fmt.Println("\nwith p1 ≈ 0.6 and n = 40, PKG's two choices saturate: 60% of the")
	fmt.Println("stream lands on two workers. D-C/W-C split the celebrity vertex's")
	fmt.Println("degree counter across many workers and match shuffle grouping,")
	fmt.Println("while the tail keeps worker affinity (at most two partials per key).")
}
