// Quickstart: route one skewed stream with every grouping scheme and
// compare the resulting load imbalance — the paper's Figure 1 in
// miniature. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"slb"
)

func main() {
	// A heavily skewed workload: Zipf z=2.0 means the hottest key alone
	// carries ≈60% of the traffic.
	const (
		workers  = 50
		keys     = 10_000
		messages = 500_000
		seed     = 42
	)
	gen := slb.NewZipfStream(2.0, keys, messages, seed)
	stats := slb.CollectStats(gen)
	fmt.Printf("stream: %d messages, %d distinct keys, hottest key %q carries %.1f%%\n\n",
		stats.Messages, stats.Keys, stats.TopKey, 100*stats.P1)

	cfg := slb.Config{Workers: workers, Seed: seed}
	fmt.Printf("%-6s  %-12s  %s\n", "algo", "imbalance", "note")
	for _, algo := range slb.Algorithms {
		res, err := slb.Simulate(gen, algo, cfg, slb.SimOptions{Sources: 5})
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		switch algo {
		case "KG":
			note = "hot key owns one worker: massive imbalance"
		case "PKG":
			note = "two choices cannot absorb p1 > 2/n"
		case "D-C":
			note = fmt.Sprintf("head spread over d=%d choices", res.FinalD)
		case "W-C":
			note = "head spread over all workers"
		case "SG":
			note = "balanced, but replicates state everywhere"
		case "RR":
			note = "head balanced obliviously"
		}
		fmt.Printf("%-6s  %-12.6f  %s\n", algo, res.Imbalance, note)
	}

	// The analytic side: how many choices does the head need?
	probs := slb.ZipfProbs(2.0, keys)
	theta := 1.0 / (5.0 * workers)
	var head []float64
	tail := 0.0
	for _, p := range probs {
		if p >= theta {
			head = append(head, p)
		} else {
			tail += p
		}
	}
	d := slb.SolveD(head, tail, workers, 1e-4)
	fmt.Printf("\nFINDOPTIMALCHOICES: |H|=%d hot keys need d=%d of n=%d workers\n",
		len(head), d, workers)
}
