// Cashtags: load balancing under concept drift. The stream's hot keys
// rotate every epoch (like trending stock symbols); the SpaceSaving
// sketch inside D-Choices/W-Choices has to notice each new hot key
// online. The example prints the imbalance over time for PKG, D-C and
// W-C on the drifting stream — PKG degrades whenever the current hot
// keys exceed the capacity of two workers, while the sketch-based
// schemes re-adapt within each epoch.
//
//	go run ./examples/cashtags
package main

import (
	"fmt"
	"log"

	"slb"
)

func main() {
	const (
		workers  = 20
		keys     = 2_900
		messages = 400_000
		epochLen = 50_000 // 8 epochs
		seed     = 3
	)
	gen := slb.NewDriftStream(1.9, keys, messages, epochLen, keys/8, seed)
	stats := slb.CollectStats(gen)
	fmt.Printf("drifting stream: %d messages, %d keys, overall p1 = %.2f%% (per-epoch hot key ≈ %.0f%%)\n\n",
		stats.Messages, stats.Keys, 100*stats.P1, 100*stats.P1*8)

	cfg := slb.Config{Workers: workers, Seed: seed}
	series := map[string][]float64{}
	for _, algo := range []string{"PKG", "D-C", "W-C"} {
		res, err := slb.Simulate(gen, algo, cfg, slb.SimOptions{Sources: 5, Snapshots: 16})
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range res.Series {
			series[algo] = append(series[algo], p.Imbalance)
		}
	}

	fmt.Printf("%-9s  %10s  %10s  %10s\n", "progress", "PKG", "D-C", "W-C")
	for i := 0; i < len(series["PKG"]); i++ {
		fmt.Printf("%8.0f%%  %10.6f  %10.6f  %10.6f\n",
			100*float64(i+1)/float64(len(series["PKG"])),
			series["PKG"][i], series["D-C"][i], series["W-C"][i])
	}
	fmt.Println("\neach epoch boundary replaces the hot set; the sketch-based schemes")
	fmt.Println("detect the new heavy hitters after a handful of occurrences and the")
	fmt.Println("imbalance stays flat, without routing tables or operator migration.")
}
