// Digest-carry correctness: with aggregation enabled, each message's
// key bytes are digested exactly ONCE end to end (source → route →
// aggregate → reduce), in every engine — pinned by counting
// hashing.Digest calls over full runs — and the carried-digest plumbing
// changes no results: both engines produce identical finals and
// replication factors, equal to the single-node ground truth.
package slb_test

import (
	"sync/atomic"
	"testing"

	"slb"
	"slb/internal/hashing"
)

// countDigests runs fn with a hook counting every hashing.Digest call.
// fn must join all its goroutines before returning (every engine's Run
// does), so the final load is race-free.
func countDigests(fn func()) int64 {
	var n atomic.Int64
	hashing.SetDigestHook(func() { n.Add(1) })
	defer hashing.SetDigestHook(nil)
	fn()
	return n.Load()
}

// TestHashOnceEventsim: the discrete-event engine digests each key
// exactly once per message with aggregation on.
func TestHashOnceEventsim(t *testing.T) {
	const m = 10_000
	got := countDigests(func() {
		gen := slb.NewZipfStream(1.6, 300, m, 11)
		if _, err := slb.SimulateCluster(gen, slb.ClusterConfig{
			Workers: 8, Sources: 4, Algorithm: "D-C",
			Core: slb.Config{Seed: 11}, ServiceTime: 1.0, AggWindow: 500,
		}); err != nil {
			t.Fatal(err)
		}
	})
	if got != m {
		t.Fatalf("eventsim digested %d times for %d messages, want exactly one per message", got, m)
	}
}

// TestHashOnceDspeRun: the goroutine engine digests each key exactly
// once per message with aggregation on — routing's digests flow into
// the bolts' partial tables and the reducer, with zero re-scans.
func TestHashOnceDspeRun(t *testing.T) {
	const m = 10_000
	for _, algo := range []string{"KG", "W-C", "SG"} {
		got := countDigests(func() {
			gen := slb.NewZipfStream(1.6, 300, m, 11)
			if _, err := slb.RunTopology(gen, slb.EngineConfig{
				Workers: 4, Sources: 2, Algorithm: algo,
				Core: slb.Config{Seed: 11}, AggWindow: 500,
			}); err != nil {
				t.Fatal(err)
			}
		})
		if got != m {
			t.Fatalf("%s: dspe digested %d times for %d messages, want exactly one per message", algo, got, m)
		}
	}
}

// TestHashOncePipeline: a full two-phase pipeline (D-C windowed
// partials → KG reduce) re-keys every downstream edge via the carried
// digest — the only digests of the whole run happen at the spout.
func TestHashOncePipeline(t *testing.T) {
	const m = 8_000
	got := countDigests(func() {
		gen := slb.NewZipfStream(1.6, 300, m, 11)
		p := slb.NewPipeline(gen, 2).
			AddWindowedAggregate("partials", 4, "D-C", 500).
			AddWeightedStage("reduce", 2, "KG", 0,
				func(key string, window, count int64, emit func(string, int64)) {})
		if _, err := p.Run(slb.PipelineConfig{Core: slb.Config{Seed: 11}}); err != nil {
			t.Fatal(err)
		}
	})
	if got != m {
		t.Fatalf("pipeline digested %d times for %d messages, want exactly one per message (spout only)", got, m)
	}
}

// TestCrossEngineAggregationParity: with a single source (so routing is
// deterministic and engine-independent), both engines must produce
// byte-identical finals — equal to the single-node ground truth — and
// the exact same measured replication factor. This pins that the
// digest-carry refactor changed plumbing, not results.
func TestCrossEngineAggregationParity(t *testing.T) {
	const (
		m      = 12_000
		window = 1_000
	)
	type key struct {
		w int64
		k string
	}
	collect := func() (map[key]int64, func(slb.AggFinal)) {
		got := make(map[key]int64)
		return got, func(f slb.AggFinal) { got[key{f.Window, f.Key}] += f.Count }
	}
	for _, algo := range []string{"KG", "PKG", "W-C"} {
		// Ground truth: single-node per-(window, key) counts.
		truth := make(map[key]int64)
		gen := slb.NewZipfStream(1.8, 400, m, 29)
		var idx int64
		for {
			k, ok := gen.Next()
			if !ok {
				break
			}
			truth[key{idx / window, k}]++
			idx++
		}

		evtFinals, onEvt := collect()
		evt, err := slb.SimulateCluster(slb.NewZipfStream(1.8, 400, m, 29), slb.ClusterConfig{
			Workers: 8, Sources: 1, Algorithm: algo,
			Core: slb.Config{Seed: 29}, ServiceTime: 1.0,
			AggWindow: window, OnFinal: onEvt,
		})
		if err != nil {
			t.Fatal(err)
		}
		liveFinals, onLive := collect()
		live, err := slb.RunTopology(slb.NewZipfStream(1.8, 400, m, 29), slb.EngineConfig{
			Workers: 8, Sources: 1, Algorithm: algo,
			Core: slb.Config{Seed: 29}, ServiceTime: 0,
			AggWindow: window, OnFinal: onLive,
		})
		if err != nil {
			t.Fatal(err)
		}

		for _, finals := range []map[key]int64{evtFinals, liveFinals} {
			if len(finals) != len(truth) {
				t.Fatalf("%s: %d finals, want %d", algo, len(finals), len(truth))
			}
			for k, want := range truth {
				if finals[k] != want {
					t.Fatalf("%s: window %d key %q = %d, want %d", algo, k.w, k.k, finals[k], want)
				}
			}
		}
		if evt.AggReplication != live.AggReplication {
			t.Errorf("%s: replication factors diverge across engines: eventsim %v, dspe %v",
				algo, evt.AggReplication, live.AggReplication)
		}
		if evt.AggTotal != m || live.AggTotal != m {
			t.Errorf("%s: totals %d (eventsim) / %d (dspe), want %d", algo, evt.AggTotal, live.AggTotal, m)
		}
	}
}
