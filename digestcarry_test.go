// Digest-carry correctness: with aggregation enabled, each message's
// key bytes are digested exactly ONCE end to end (source → route →
// aggregate → reduce), in every engine — pinned by counting
// hashing.Digest calls over full runs — and the carried-digest plumbing
// changes no results: both engines produce identical finals and
// replication factors, equal to the single-node ground truth.
package slb_test

import (
	"sync/atomic"
	"testing"

	"slb"
	"slb/internal/hashing"
)

// countDigests runs fn with a hook counting every hashing.Digest call.
// fn must join all its goroutines before returning (every engine's Run
// does), so the final load is race-free.
func countDigests(fn func()) int64 {
	var n atomic.Int64
	hashing.SetDigestHook(func() { n.Add(1) })
	defer hashing.SetDigestHook(nil)
	fn()
	return n.Load()
}

// TestHashOnceEventsim: the discrete-event engine digests each key
// exactly once per message with aggregation on — including with the
// reduce stage sharded, whose per-shard routing and completeness
// thresholds run on the carried digest.
func TestHashOnceEventsim(t *testing.T) {
	const m = 10_000
	for _, shards := range []int{1, 4} {
		got := countDigests(func() {
			gen := slb.NewZipfStream(1.6, 300, m, 11)
			if _, err := slb.SimulateCluster(gen, slb.ClusterConfig{
				Workers: 8, Sources: 4, Algorithm: "D-C",
				Core: slb.Config{Seed: 11}, ServiceTime: 1.0, AggWindow: 500,
				AggShards: shards,
			}); err != nil {
				t.Fatal(err)
			}
		})
		if got != m {
			t.Fatalf("R=%d: eventsim digested %d times for %d messages, want exactly one per message", shards, got, m)
		}
	}
}

// dataplanes names both tuple transports of the goroutine runtime; the
// digest-carry and parity properties must hold identically on each.
var dataplanes = map[string]slb.Dataplane{
	"channel": slb.DataplaneChannel,
	"ring":    slb.DataplaneRing,
}

// TestHashOnceDspeRun: the goroutine engine digests each key exactly
// once per message with aggregation on — routing's digests flow into
// the bolts' partial tables, the shard split, and the reducers, with
// zero re-scans. The ring plane's combiner tree adds merge hops but no
// re-hash: combined partials carry their constituents' digests.
func TestHashOnceDspeRun(t *testing.T) {
	const m = 10_000
	for plane, dp := range dataplanes {
		for _, algo := range []string{"KG", "W-C", "SG"} {
			for _, shards := range []int{1, 4} {
				got := countDigests(func() {
					gen := slb.NewZipfStream(1.6, 300, m, 11)
					if _, err := slb.RunTopology(gen, slb.EngineConfig{
						Workers: 4, Sources: 2, Algorithm: algo,
						Core: slb.Config{Seed: 11}, AggWindow: 500,
						AggShards: shards, Dataplane: dp,
					}); err != nil {
						t.Fatal(err)
					}
				})
				if got != m {
					t.Fatalf("%s %s R=%d: dspe digested %d times for %d messages, want exactly one per message", plane, algo, shards, got, m)
				}
			}
		}
	}
}

// TestHashOncePipeline: a full two-phase pipeline (D-C windowed
// partials → KG reduce) re-keys every downstream edge via the carried
// digest — the only digests of the whole run happen at the spout.
func TestHashOncePipeline(t *testing.T) {
	const m = 8_000
	for plane, dp := range dataplanes {
		got := countDigests(func() {
			gen := slb.NewZipfStream(1.6, 300, m, 11)
			p := slb.NewPipeline(gen, 2).
				AddWindowedAggregate("partials", 4, "D-C", 500).
				AddWeightedStage("reduce", 2, "KG", 0,
					func(key string, window, count int64, emit func(string, int64)) {})
			if _, err := p.Run(slb.PipelineConfig{Core: slb.Config{Seed: 11}, Dataplane: dp}); err != nil {
				t.Fatal(err)
			}
		})
		if got != m {
			t.Fatalf("%s: pipeline digested %d times for %d messages, want exactly one per message (spout only)", plane, got, m)
		}
	}
}

// TestCrossEngineAggregationParity: with a single source (so routing is
// deterministic and engine-independent), both engines must produce
// byte-identical finals — equal to the single-node ground truth — and
// the exact same measured replication factor. This pins that the
// digest-carry refactor changed plumbing, not results.
func TestCrossEngineAggregationParity(t *testing.T) {
	const (
		m      = 12_000
		window = 1_000
	)
	type key struct {
		w int64
		k string
	}
	collect := func() (map[key]int64, func(slb.AggFinal)) {
		got := make(map[key]int64)
		return got, func(f slb.AggFinal) { got[key{f.Window, f.Key}] += f.Count }
	}
	for _, algo := range []string{"KG", "PKG", "W-C"} {
		// Ground truth: single-node per-(window, key) counts.
		truth := make(map[key]int64)
		gen := slb.NewZipfStream(1.8, 400, m, 29)
		var idx int64
		for {
			k, ok := gen.Next()
			if !ok {
				break
			}
			truth[key{idx / window, k}]++
			idx++
		}

		evtFinals, onEvt := collect()
		evt, err := slb.SimulateCluster(slb.NewZipfStream(1.8, 400, m, 29), slb.ClusterConfig{
			Workers: 8, Sources: 1, Algorithm: algo,
			Core: slb.Config{Seed: 29}, ServiceTime: 1.0,
			AggWindow: window, OnFinal: onEvt,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(evtFinals) != len(truth) {
			t.Fatalf("%s eventsim: %d finals, want %d", algo, len(evtFinals), len(truth))
		}
		for k, want := range truth {
			if evtFinals[k] != want {
				t.Fatalf("%s eventsim: window %d key %q = %d, want %d", algo, k.w, k.k, evtFinals[k], want)
			}
		}
		if evt.AggTotal != m {
			t.Errorf("%s eventsim: total %d, want %d", algo, evt.AggTotal, m)
		}

		for plane, dp := range dataplanes {
			liveFinals, onLive := collect()
			live, err := slb.RunTopology(slb.NewZipfStream(1.8, 400, m, 29), slb.EngineConfig{
				Workers: 8, Sources: 1, Algorithm: algo,
				Core: slb.Config{Seed: 29}, ServiceTime: 0,
				AggWindow: window, OnFinal: onLive, Dataplane: dp,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(liveFinals) != len(truth) {
				t.Fatalf("%s dspe/%s: %d finals, want %d", algo, plane, len(liveFinals), len(truth))
			}
			for k, want := range truth {
				if liveFinals[k] != want {
					t.Fatalf("%s dspe/%s: window %d key %q = %d, want %d", algo, plane, k.w, k.k, liveFinals[k], want)
				}
			}
			if evt.AggReplication != live.AggReplication {
				t.Errorf("%s: replication factors diverge across engines: eventsim %v, dspe/%s %v",
					algo, evt.AggReplication, plane, live.AggReplication)
			}
			if live.AggTotal != m {
				t.Errorf("%s dspe/%s: total %d, want %d", algo, plane, live.AggTotal, m)
			}
		}
	}
}

// TestCrossEngineShardedMergerParity extends the parity test across
// the sharded reduce stage and every built-in merge operator: with a
// single source (deterministic, engine-independent routing), both
// engines at every shard count must produce identical finals — counts
// AND merged values, equal to the single-node ground truth computed by
// driving the operator directly — and bit-equal replication factors.
// Sharding and pluggable merging change the reduce stage's topology,
// never its results.
func TestCrossEngineShardedMergerParity(t *testing.T) {
	const (
		m      = 8_000
		window = 800
	)
	sample := func(key string, seq int64) int64 { return int64(len(key)) + seq%13 }
	type fk struct {
		w int64
		k string
	}
	for _, merger := range []slb.Merger{slb.CountMerger, slb.SumMerger, slb.MinMerger, slb.MaxMerger, slb.DistinctMerger} {
		// Ground truth: fold every message's sample through the operator
		// per (window, key) on a single node.
		truthVal := make(map[fk]slb.MergeValue)
		truthCount := make(map[fk]int64)
		gen := slb.NewZipfStream(1.8, 400, m, 29)
		var idx int64
		for {
			k, ok := gen.Next()
			if !ok {
				break
			}
			id := fk{idx / window, k}
			v := truthVal[id]
			merger.Observe(&v, sample(k, idx), 1)
			truthVal[id] = v
			truthCount[id]++
			idx++
		}

		for _, shards := range []int{1, 3} {
			collect := func() (map[fk]slb.AggFinal, func(slb.AggFinal)) {
				got := make(map[fk]slb.AggFinal)
				return got, func(f slb.AggFinal) {
					if _, dup := got[fk{f.Window, f.Key}]; dup {
						t.Errorf("%s R=%d: (window %d, key %q) finalized twice", merger.Name(), shards, f.Window, f.Key)
					}
					got[fk{f.Window, f.Key}] = f
				}
			}
			evtFinals, onEvt := collect()
			evt, err := slb.SimulateCluster(slb.NewZipfStream(1.8, 400, m, 29), slb.ClusterConfig{
				Workers: 8, Sources: 1, Algorithm: "W-C",
				Core: slb.Config{Seed: 29}, ServiceTime: 1.0,
				AggWindow: window, AggShards: shards,
				AggMerger: merger, AggValue: sample, OnFinal: onEvt,
			})
			if err != nil {
				t.Fatal(err)
			}
			engines := map[string]map[fk]slb.AggFinal{"eventsim": evtFinals}
			for plane, dp := range dataplanes {
				liveFinals, onLive := collect()
				live, err := slb.RunTopology(slb.NewZipfStream(1.8, 400, m, 29), slb.EngineConfig{
					Workers: 8, Sources: 1, Algorithm: "W-C",
					Core: slb.Config{Seed: 29}, ServiceTime: 0,
					AggWindow: window, AggShards: shards,
					AggMerger: merger, AggValue: sample, OnFinal: onLive,
					Dataplane: dp,
				})
				if err != nil {
					t.Fatal(err)
				}
				engines["dspe/"+plane] = liveFinals
				if evt.AggReplication != live.AggReplication {
					t.Errorf("%s R=%d: replication diverges across engines: eventsim %v, dspe/%s %v",
						merger.Name(), shards, evt.AggReplication, plane, live.AggReplication)
				}
				if live.AggTotal != m {
					t.Errorf("%s R=%d dspe/%s: total %d, want %d",
						merger.Name(), shards, plane, live.AggTotal, m)
				}
				if live.Agg.Late != 0 {
					t.Errorf("%s R=%d dspe/%s: late corrections %d, want 0",
						merger.Name(), shards, plane, live.Agg.Late)
				}
			}

			for engine, finals := range engines {
				if len(finals) != len(truthCount) {
					t.Fatalf("%s R=%d %s: %d finals, want %d", merger.Name(), shards, engine, len(finals), len(truthCount))
				}
				for id, wantCount := range truthCount {
					f := finals[id]
					wantValue := merger.Result(truthVal[id])
					if f.Count != wantCount || f.Value != wantValue {
						t.Fatalf("%s R=%d %s: (window %d, key %q) count/value %d/%d, want %d/%d",
							merger.Name(), shards, engine, id.w, id.k, f.Count, f.Value, wantCount, wantValue)
					}
				}
			}
			if evt.AggTotal != m {
				t.Errorf("%s R=%d: eventsim total %d, want %d", merger.Name(), shards, evt.AggTotal, m)
			}
			if evt.Agg.Late != 0 {
				t.Errorf("%s R=%d: eventsim late corrections %d, want 0", merger.Name(), shards, evt.Agg.Late)
			}
		}
	}
}
