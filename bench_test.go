// Benchmarks that regenerate every table and figure of the paper's
// evaluation at Quick scale — one testing.B benchmark per experiment —
// plus micro-benchmarks of the public routing API. Run with:
//
//	go test -bench=. -benchmem
//
// The per-figure benches report ns/op for one full experiment run; the
// interesting scientific output (the tables themselves) comes from
// cmd/slbsim and cmd/slbstorm, and the headline quantities are attached
// here as custom benchmark metrics where that is meaningful.
package slb_test

import (
	"strconv"
	"testing"

	"slb"
	"slb/internal/experiments"
)

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, name string) {
	e, ok := experiments.Lookup(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }

func BenchmarkAblateEps(b *testing.B)        { benchExperiment(b, "ablate-eps") }
func BenchmarkAblateSketch(b *testing.B)     { benchExperiment(b, "ablate-sketch") }
func BenchmarkAblatePrefix(b *testing.B)     { benchExperiment(b, "ablate-prefix") }
func BenchmarkAblateMerge(b *testing.B)      { benchExperiment(b, "ablate-merge") }
func BenchmarkAblateWindow(b *testing.B)     { benchExperiment(b, "ablate-window") }
func BenchmarkAblateOracle(b *testing.B)     { benchExperiment(b, "ablate-oracle") }
func BenchmarkAblateSaturation(b *testing.B) { benchExperiment(b, "ablate-saturation") }
func BenchmarkAblateStraggler(b *testing.B)  { benchExperiment(b, "ablate-straggler") }
func BenchmarkLiveFig13(b *testing.B)        { benchExperiment(b, "live-fig13") }

// BenchmarkRoute measures the per-message routing cost of each
// algorithm — the overhead a DSPE pays at the sender. Imbalance of the
// benchmark run is attached as a custom metric.
func BenchmarkRoute(b *testing.B) {
	for _, algo := range slb.Algorithms {
		for _, n := range []int{10, 100} {
			b.Run(algo+"/n="+strconv.Itoa(n), func(b *testing.B) {
				p, err := slb.New(algo, slb.Config{Workers: n, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				gen := slb.NewZipfStream(1.4, 10_000, int64(b.N)+1, 1)
				loads := make([]int64, n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k, _ := gen.Next()
					loads[p.Route(k)]++
				}
				b.ReportMetric(slb.Imbalance(loads), "imbalance")
			})
		}
	}
}

// benchStream is the acceptance workload for the Route-vs-RouteBatch
// comparison: 50 workers, z = 2.0 Zipf keys (p1 ≈ 0.61 — the regime the
// paper's head-aware algorithms exist for).
const (
	benchWorkers  = 50
	benchZ        = 2.0
	benchKeys     = 10_000
	benchSlabSize = 512
)

// BenchmarkRouteSteadyState is the per-message half of the comparison:
// one emit (gen.Next) and one Route per operation, on warm partitioner
// state. Steady-state PKG and D-Choices routing must report 0 allocs/op
// (asserted hard by TestSteadyStateRoutingZeroAllocs).
func BenchmarkRouteSteadyState(b *testing.B) {
	for _, algo := range slb.Algorithms {
		b.Run(algo, func(b *testing.B) {
			p, err := slb.New(algo, slb.Config{Workers: benchWorkers, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			warm := slb.NewZipfStream(benchZ, benchKeys, 50_000, 2)
			for {
				k, ok := warm.Next()
				if !ok {
					break
				}
				p.Route(k)
			}
			gen := slb.NewZipfStream(benchZ, benchKeys, int64(b.N)+1, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k, _ := gen.Next()
				p.Route(k)
			}
		})
	}
}

// BenchmarkRouteBatchSteadyState is the batched half: one NextBatch and
// one RouteBatch per slab of 512, same stream, same warmup. Compare
// ns/op against BenchmarkRouteSteadyState — the ratio is the batch
// speedup (largest for D-Choices, whose per-message path re-derives d
// candidate buckets that the batch path caches per head key, and for
// the sketch-amortizing run path generally).
func BenchmarkRouteBatchSteadyState(b *testing.B) {
	for _, algo := range slb.Algorithms {
		b.Run(algo, func(b *testing.B) {
			p, err := slb.New(algo, slb.Config{Workers: benchWorkers, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			warm := slb.NewZipfStream(benchZ, benchKeys, 50_000, 2)
			for {
				k, ok := warm.Next()
				if !ok {
					break
				}
				p.Route(k)
			}
			gen := slb.NewZipfStream(benchZ, benchKeys, int64(b.N)+benchSlabSize, 1)
			keys := make([]string, benchSlabSize)
			dst := make([]int, benchSlabSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += benchSlabSize {
				n := slb.NextBatch(gen, keys)
				if n == 0 {
					b.Fatal("stream exhausted")
				}
				slb.RouteBatch(p, keys[:n], dst)
			}
		})
	}
}

// BenchmarkRouteBatchDigestsSteadyState is the hash-once half of the
// digest-carry comparison: one NextBatch and one RouteBatchDigests per
// slab of 512 — routing plus the digests every downstream layer needs,
// in one key scan. Compare against
// BenchmarkRouteBatchRedigestSteadyState, the pre-refactor pattern an
// aggregating engine had to use (RouteBatch, then digest every key
// again for the partial tables): the gap is the second key-byte scan
// this PR removes from the aggregation hot path.
func BenchmarkRouteBatchDigestsSteadyState(b *testing.B) {
	for _, algo := range slb.Algorithms {
		b.Run(algo, func(b *testing.B) {
			p, err := slb.New(algo, slb.Config{Workers: benchWorkers, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			warm := slb.NewZipfStream(benchZ, benchKeys, 50_000, 2)
			for {
				k, ok := warm.Next()
				if !ok {
					break
				}
				p.Route(k)
			}
			gen := slb.NewZipfStream(benchZ, benchKeys, int64(b.N)+benchSlabSize, 1)
			keys := make([]string, benchSlabSize)
			digs := make([]slb.KeyDigest, benchSlabSize)
			dst := make([]int, benchSlabSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += benchSlabSize {
				n := slb.NextBatch(gen, keys)
				if n == 0 {
					b.Fatal("stream exhausted")
				}
				slb.RouteBatchDigests(p, keys[:n], digs, dst)
			}
		})
	}
}

// BenchmarkRouteBatchRedigestSteadyState reproduces the two-scan
// pattern RouteBatchDigests replaces: route the slab, then digest every
// key again (what the engines' aggregation path did before the digests
// were carried).
func BenchmarkRouteBatchRedigestSteadyState(b *testing.B) {
	for _, algo := range slb.Algorithms {
		b.Run(algo, func(b *testing.B) {
			p, err := slb.New(algo, slb.Config{Workers: benchWorkers, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			warm := slb.NewZipfStream(benchZ, benchKeys, 50_000, 2)
			for {
				k, ok := warm.Next()
				if !ok {
					break
				}
				p.Route(k)
			}
			gen := slb.NewZipfStream(benchZ, benchKeys, int64(b.N)+benchSlabSize, 1)
			keys := make([]string, benchSlabSize)
			digs := make([]slb.KeyDigest, benchSlabSize)
			dst := make([]int, benchSlabSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += benchSlabSize {
				n := slb.NextBatch(gen, keys)
				if n == 0 {
					b.Fatal("stream exhausted")
				}
				slb.RouteBatch(p, keys[:n], dst)
				for j, k := range keys[:n] {
					digs[j] = slb.DigestKey(k)
				}
			}
		})
	}
}

// BenchmarkShardedReduce runs the discrete-event cluster at the
// reducer-saturating aggregation config (W-Choices, AggFlushCost =
// 2 ms, small windows) with the reduce stage unsharded vs sharded
// 4 ways: one full deterministic run per iteration, with the modeled
// throughput and the busiest shard's utilization attached as custom
// metrics. R=1 pins the saturated regime (util ≈ 1); R=4 shows the
// saturation point moved and the reducer-bound throughput recovered.
func BenchmarkShardedReduce(b *testing.B) {
	const m = 20_000
	for _, shards := range []int{1, 4} {
		b.Run("R="+strconv.Itoa(shards), func(b *testing.B) {
			var last slb.ClusterResult
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gen := slb.NewZipfStream(2.0, 500, m, 23)
				res, err := slb.SimulateCluster(gen, slb.ClusterConfig{
					Workers: 16, Sources: 8, Algorithm: "W-C",
					Core: slb.Config{Seed: 7}, ServiceTime: 1.0,
					Window: 50, Messages: m,
					AggWindow: 100, AggFlushCost: 2.0, AggShards: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.AggTotal != m {
					b.Fatalf("finals sum to %d, want %d", res.AggTotal, m)
				}
				last = res
			}
			b.ReportMetric(last.Throughput, "modeled-events/s")
			b.ReportMetric(last.ReducerUtil, "max-shard-util")
		})
	}
}

// BenchmarkRouteAtScale measures the head-aware schemes' routing cost
// across deployment sizes, scan vs tournament load index, on the
// head-dominated workload (z = 2.0, ≈80% of messages in the head) that
// maximizes argmin pressure. The acceptance shape: W-C/tree ns/op stays
// roughly flat from n=256 to n=16384 (O(log n) head routing) while
// W-C/scan grows linearly with n. D-C's candidate path is O(c) per run
// of a head key by construction (c = deduplicated candidates); the tree
// variant bounds the per-message cost of multi-message runs at
// O(log c). Theta is pinned so the sketch (and the head set) is
// identical at every n — the sweep varies ONLY the argmin cost.
func BenchmarkRouteAtScale(b *testing.B) {
	for _, algo := range []string{"W-C", "D-C"} {
		for _, mode := range []struct {
			name string
			lidx int
		}{{"scan", slb.LoadIndexScan}, {"tree", slb.LoadIndexTree}} {
			for _, n := range []int{64, 256, 1024, 4096, 16384} {
				b.Run(algo+"/"+mode.name+"/n="+strconv.Itoa(n), func(b *testing.B) {
					cfg := slb.Config{Workers: n, Seed: 1, Theta: 1.0 / (5 * 2048), LoadIndex: mode.lidx}
					p, err := slb.New(algo, cfg)
					if err != nil {
						b.Fatal(err)
					}
					warm := slb.NewZipfStream(benchZ, benchKeys, 50_000, 2)
					wkeys := make([]string, benchSlabSize)
					wdst := make([]int, benchSlabSize)
					for {
						k := slb.NextBatch(warm, wkeys)
						if k == 0 {
							break
						}
						slb.RouteBatch(p, wkeys[:k], wdst)
					}
					gen := slb.NewZipfStream(benchZ, benchKeys, int64(b.N)+benchSlabSize, 1)
					keys := make([]string, benchSlabSize)
					dst := make([]int, benchSlabSize)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i += benchSlabSize {
						k := slb.NextBatch(gen, keys)
						if k == 0 {
							b.Fatal("stream exhausted")
						}
						slb.RouteBatch(p, keys[:k], dst)
					}
				})
			}
		}
	}
}

// BenchmarkSimulateThroughput measures end-to-end simulator throughput
// (messages routed per second) for the paper's algorithms at n = 50.
func BenchmarkSimulateThroughput(b *testing.B) {
	for _, algo := range []string{"PKG", "D-C", "W-C"} {
		b.Run(algo, func(b *testing.B) {
			gen := slb.NewZipfStream(1.6, 10_000, 50_000, 7)
			cfg := slb.Config{Workers: 50, Seed: 7}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := slb.Simulate(gen, algo, cfg, slb.SimOptions{Sources: 5}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(50_000*b.N)/b.Elapsed().Seconds(), "msgs/s")
		})
	}
}

// TestSteadyStateRoutingZeroAllocs asserts the allocation contract the
// benchmarks report: warm steady-state routing — both APIs — performs
// zero allocations for PKG and D-Choices (and the other head-aware
// schemes). SolveEvery is raised so the amortized, allocating solver
// stays outside the measured window; everything else is the default
// configuration.
func TestSteadyStateRoutingZeroAllocs(t *testing.T) {
	gen := slb.NewZipfStream(benchZ, benchKeys, 60_000, 7)
	keys := make([]string, 0, 60_000)
	buf := make([]string, benchSlabSize)
	for {
		n := slb.NextBatch(gen, buf)
		if n == 0 {
			break
		}
		keys = append(keys, buf[:n]...)
	}
	for _, algo := range []string{"PKG", "D-C", "W-C", "RR"} {
		cfg := slb.Config{Workers: benchWorkers, Seed: 7, SolveEvery: 1 << 30}
		p, err := slb.New(algo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			p.Route(k) // warmup: sketch at capacity, pools primed
		}
		i := 0
		if avg := testing.AllocsPerRun(5000, func() {
			p.Route(keys[i%len(keys)])
			i++
		}); avg != 0 {
			t.Errorf("%s: steady-state Route allocates %.4f allocs/op, want 0", algo, avg)
		}
		dst := make([]int, benchSlabSize)
		j := 0
		if avg := testing.AllocsPerRun(100, func() {
			if j+benchSlabSize > len(keys) {
				j = 0
			}
			slb.RouteBatch(p, keys[j:j+benchSlabSize], dst)
			j += benchSlabSize
		}); avg != 0 {
			t.Errorf("%s: steady-state RouteBatch allocates %.4f allocs/slab, want 0", algo, avg)
		}
		digs := make([]slb.KeyDigest, benchSlabSize)
		j = 0
		if avg := testing.AllocsPerRun(100, func() {
			if j+benchSlabSize > len(keys) {
				j = 0
			}
			slb.RouteBatchDigests(p, keys[j:j+benchSlabSize], digs, dst)
			j += benchSlabSize
		}); avg != 0 {
			t.Errorf("%s: steady-state RouteBatchDigests allocates %.4f allocs/slab, want 0", algo, avg)
		}
	}
	// The tournament load-index path (large deployments) upholds the
	// same contract: warm steady-state routing through the tree — full
	// argmin tree, candidate subset tournaments, prefix-window cache —
	// allocates nothing, for both APIs.
	for _, algo := range []string{"D-C", "W-C"} {
		cfg := slb.Config{Workers: 1024, Seed: 7, SolveEvery: 1 << 30, LoadIndex: slb.LoadIndexTree}
		p, err := slb.New(algo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			p.Route(k)
		}
		i := 0
		if avg := testing.AllocsPerRun(5000, func() {
			p.Route(keys[i%len(keys)])
			i++
		}); avg != 0 {
			t.Errorf("%s/tree: steady-state Route allocates %.4f allocs/op, want 0", algo, avg)
		}
		dst := make([]int, benchSlabSize)
		digs := make([]slb.KeyDigest, benchSlabSize)
		j := 0
		if avg := testing.AllocsPerRun(100, func() {
			if j+benchSlabSize > len(keys) {
				j = 0
			}
			slb.RouteBatchDigests(p, keys[j:j+benchSlabSize], digs, dst)
			j += benchSlabSize
		}); avg != 0 {
			t.Errorf("%s/tree: steady-state RouteBatchDigests allocates %.4f allocs/slab, want 0", algo, avg)
		}
	}
}

// BenchmarkHeavyHitters measures the sketch update path in isolation.
func BenchmarkHeavyHitters(b *testing.B) {
	hh := slb.NewHeavyHitters(1000)
	gen := slb.NewZipfStream(1.2, 100_000, int64(b.N)+1, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, _ := gen.Next()
		hh.Offer(k)
	}
}
