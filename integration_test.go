package slb_test

// Cross-module integration tests: these exercise full pipelines
// (generator → trace → simulator → analysis; one stream through all
// three engines) and check that the pieces agree with each other and
// with the paper's analytic predictions.

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
	"time"

	"slb"
)

func TestTraceRoundTripThroughFacade(t *testing.T) {
	gen := slb.NewZipfStream(1.8, 2000, 30_000, 5)
	var buf bytes.Buffer
	n, err := slb.WriteTrace(&buf, gen)
	if err != nil {
		t.Fatal(err)
	}
	if n != 30_000 {
		t.Fatalf("wrote %d", n)
	}
	replay, err := slb.TraceFromBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// Identical streams must produce identical routing under identical
	// configs — the property that makes traces useful.
	cfg := slb.Config{Workers: 30, Seed: 5}
	a, err := slb.Simulate(gen, "D-C", cfg, slb.SimOptions{Sources: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := slb.Simulate(replay, "D-C", cfg, slb.SimOptions{Sources: 5})
	if err != nil {
		t.Fatal(err)
	}
	for w := range a.Loads {
		if a.Loads[w] != b.Loads[w] {
			t.Fatalf("trace replay diverged at worker %d: %d vs %d", w, a.Loads[w], b.Loads[w])
		}
	}
}

func TestTraceFileRoundTripThroughFacade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.slbt")
	gen := slb.NewZipfStream(1.2, 500, 5_000, 9)
	if _, err := slb.WriteTraceFile(path, gen); err != nil {
		t.Fatal(err)
	}
	replay, err := slb.OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	defer replay.Close()
	if got, want := slb.CollectStats(replay), slb.CollectStats(gen); got != want {
		t.Fatalf("stats drifted through trace file: %+v vs %+v", got, want)
	}
}

func TestPKGMeasuredImbalanceMatchesAnalyticBound(t *testing.T) {
	// Integration of analysis and simulator: at high skew, PKG's measured
	// imbalance must sit at (or just above) the analytic lower bound
	// p1/2 − 1/n from the PKG analysis, and never materially below. The
	// bound assumes the hot key's two candidates are distinct; a hash
	// draw that pins them together yields imbalance ≈ p1 − 1/n instead,
	// so the lower bound is asserted for every seed but the upper check
	// takes the best of a few seeds (the probability that every draw
	// pins the hot key is ≈ n⁻ᵏ).
	for _, tc := range []struct {
		z float64
		n int
	}{
		{2.0, 10}, {2.0, 50}, {1.6, 50},
	} {
		gen := slb.NewZipfStream(tc.z, 10_000, 300_000, 42)
		p1 := slb.ZipfProbs(tc.z, 10_000)[0]
		bound := p1/2 - 1/float64(tc.n)
		best := math.Inf(1)
		for _, seed := range []uint64{42, 43, 44} {
			res, err := slb.Simulate(gen, "PKG", slb.Config{Workers: tc.n, Seed: seed},
				slb.SimOptions{Sources: 5})
			if err != nil {
				t.Fatal(err)
			}
			if res.Imbalance < bound*0.9 {
				t.Errorf("z=%.1f n=%d seed=%d: PKG imbalance %f below analytic bound %f",
					tc.z, tc.n, seed, res.Imbalance, bound)
			}
			if res.Imbalance < best {
				best = res.Imbalance
			}
		}
		if best > bound*1.5+0.02 {
			t.Errorf("z=%.1f n=%d: best-seed PKG imbalance %f far above bound %f (model broken?)",
				tc.z, tc.n, best, bound)
		}
	}
}

func TestAllEnginesAgreeOnOrdering(t *testing.T) {
	// One skewed stream through all three engines: in each, W-C must
	// beat PKG on imbalance; message conservation must hold.
	const (
		z, keys = 2.0, 1000
		m       = 20_000
		n, s    = 16, 4
	)
	mkGen := func() slb.Generator { return slb.NewZipfStream(z, keys, m, 13) }
	type outcome struct{ pkg, wc float64 }
	engines := map[string]func(algo string) (float64, int64){
		"simulator": func(algo string) (float64, int64) {
			r, err := slb.Simulate(mkGen(), algo, slb.Config{Workers: n, Seed: 13},
				slb.SimOptions{Sources: s})
			if err != nil {
				t.Fatal(err)
			}
			return r.Imbalance, r.Messages
		},
		"eventsim": func(algo string) (float64, int64) {
			r, err := slb.SimulateCluster(mkGen(), slb.ClusterConfig{
				Workers: n, Sources: s, Algorithm: algo,
				Core: slb.Config{Seed: 13}, ServiceTime: 0.01,
			})
			if err != nil {
				t.Fatal(err)
			}
			return r.Imbalance, r.Completed
		},
		"dspe": func(algo string) (float64, int64) {
			r, err := slb.RunTopology(mkGen(), slb.EngineConfig{
				Workers: n, Sources: s, Algorithm: algo,
				Core: slb.Config{Seed: 13}, ServiceTime: 0,
			})
			if err != nil {
				t.Fatal(err)
			}
			return r.Imbalance, r.Completed
		},
	}
	for name, run := range engines {
		pkgImb, pkgM := run("PKG")
		wcImb, wcM := run("W-C")
		if pkgM != m || wcM != m {
			t.Errorf("%s: message conservation violated (%d, %d)", name, pkgM, wcM)
		}
		if wcImb >= pkgImb {
			t.Errorf("%s: W-C (%f) did not beat PKG (%f)", name, wcImb, pkgImb)
		}
		_ = outcome{pkgImb, wcImb}
	}
}

func TestDatasetThroughClusterEngine(t *testing.T) {
	// A dataset stand-in drives the cluster engine end to end.
	gen, ok := slb.Dataset("CT", 3)
	if !ok {
		t.Fatal("CT missing")
	}
	res, err := slb.SimulateCluster(gen, slb.ClusterConfig{
		Workers: 10, Sources: 5, Algorithm: "D-C",
		Core: slb.Config{Seed: 3}, ServiceTime: 0.01, Messages: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 20_000 {
		t.Fatalf("completed %d", res.Completed)
	}
	if res.P99 <= 0 || math.IsNaN(res.P99) {
		t.Fatalf("p99 = %v", res.P99)
	}
}

func TestSolverAgreesWithSimulatedD(t *testing.T) {
	// The analytic d (from the true distribution) and the online d (from
	// sketch estimates inside the running D-C) must land close together.
	z, n := 1.6, 50
	probs := slb.ZipfProbs(z, 10_000)
	theta := 1.0 / (5 * float64(n))
	var head []float64
	tail := 0.0
	for _, p := range probs {
		if p >= theta {
			head = append(head, p)
		} else {
			tail += p
		}
	}
	analytic := slb.SolveD(head, tail, n, 1e-4)

	gen := slb.NewZipfStream(z, 10_000, 200_000, 21)
	res, err := slb.Simulate(gen, "D-C", slb.Config{Workers: n, Seed: 21},
		slb.SimOptions{Sources: 5})
	if err != nil {
		t.Fatal(err)
	}
	diff := res.FinalD - analytic
	if diff < -4 || diff > 4 {
		t.Fatalf("online d=%d vs analytic d=%d (diff %d)", res.FinalD, analytic, diff)
	}
}

func TestWallClockEngineFinishesPromptly(t *testing.T) {
	// Guard against deadlocks in the goroutine engine: a run that should
	// take ~100 ms must not hang.
	done := make(chan error, 1)
	go func() {
		_, err := slb.RunTopology(slb.NewZipfStream(1.5, 200, 5_000, 7), slb.EngineConfig{
			Workers: 8, Sources: 4, Algorithm: "W-C",
			Core: slb.Config{Seed: 7}, ServiceTime: 50 * time.Microsecond,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("goroutine engine did not finish (deadlock?)")
	}
}
