package slb_test

// Golden regression tests: the whole stack (hashing, sketch, solver,
// routing, simulation) is deterministic for a fixed seed, so these
// exact values must never change unless an algorithm is intentionally
// modified. A failure here means routing behaviour changed — review
// whether that was intended before updating the constants.
//
// The fixtures were regenerated once when the digest-based routing path
// replaced per-member key rescanning (hash values necessarily changed:
// one FNV-1a digest per key, multiply-shift member mixing, Lemire
// bucket reduction). To regenerate after another intentional change,
// run the equivalent of:
//
//	gen := slb.NewZipfStream(1.8, 5000, 100_000, 77)
//	for _, algo := range slb.Algorithms {
//		res, _ := slb.Simulate(gen, algo, slb.Config{Workers: 25, Seed: 77},
//			slb.SimOptions{Sources: 5})
//		fmt.Printf("{%q, %d, %d, %.10f},\n", algo, res.Loads[0], res.Loads[24], res.Imbalance)
//	}
//	p := slb.NewPKG(slb.Config{Workers: 100, Seed: 1})
//	fmt.Println(p.Route("alpha"), p.Route("beta"), p.Route("gamma"), p.Route("alpha"))
//
// and paste the output below.

import (
	"math"
	"testing"

	"slb"
)

func TestGoldenSimulationValues(t *testing.T) {
	want := []struct {
		algo          string
		load0, load24 int64
		imbalance     float64
	}{
		{"KG", 137, 3211, 0.6520300000},
		{"SG", 4000, 4000, 0.0000000000},
		{"PKG", 1686, 2130, 0.2256100000},
		{"D-C", 4063, 3919, 0.0006800000},
		{"W-C", 4000, 3996, 0.0000100000},
		{"RR", 4019, 3961, 0.0019700000},
	}
	gen := slb.NewZipfStream(1.8, 5000, 100_000, 77)
	for _, w := range want {
		res, err := slb.Simulate(gen, w.algo, slb.Config{Workers: 25, Seed: 77},
			slb.SimOptions{Sources: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.Loads[0] != w.load0 || res.Loads[24] != w.load24 {
			t.Errorf("%s: loads[0]=%d loads[24]=%d, want %d, %d",
				w.algo, res.Loads[0], res.Loads[24], w.load0, w.load24)
		}
		if math.Abs(res.Imbalance-w.imbalance) > 1e-9 {
			t.Errorf("%s: imbalance %.10f, want %.10f", w.algo, res.Imbalance, w.imbalance)
		}
	}
}

func TestGoldenHashValues(t *testing.T) {
	// The hash family is part of the on-the-wire contract: all senders
	// must agree on candidates forever.
	p := slb.NewPKG(slb.Config{Workers: 100, Seed: 1})
	got := []int{p.Route("alpha"), p.Route("beta"), p.Route("gamma"), p.Route("alpha")}
	want := []int{54, 93, 6, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("routing sequence changed: got %v, want %v", got, want)
		}
	}
}

// TestGoldenDigestValues pins the digest layer itself: the canonical
// KeyDigest of a key is a pure function of its bytes (64-bit FNV-1a) and
// is shared by every sender and every sketch.
func TestGoldenDigestValues(t *testing.T) {
	want := map[string]slb.KeyDigest{
		"":      0xcbf29ce484222325,
		"alpha": 0x8ac625bb85ed202b,
		"k0":    0x08be0e07b562230e,
	}
	for key, w := range want {
		if got := slb.DigestKey(key); got != w {
			t.Errorf("DigestKey(%q) = %#x, want %#x", key, got, w)
		}
	}
}
