package slb_test

// Golden regression tests: the whole stack (hashing, sketch, solver,
// routing, simulation) is deterministic for a fixed seed, so these
// exact values must never change unless an algorithm is intentionally
// modified. A failure here means routing behaviour changed — review
// whether that was intended before updating the constants.

import (
	"math"
	"testing"

	"slb"
)

func TestGoldenSimulationValues(t *testing.T) {
	want := []struct {
		algo          string
		load0, load24 int64
		imbalance     float64
	}{
		{"KG", 1667, 4970, 0.4917600000},
		{"SG", 4000, 4000, 0.0000000000},
		{"PKG", 1674, 4393, 0.2260100000},
		{"D-C", 4051, 4112, 0.0011600000},
		{"W-C", 4000, 3999, 0.0000100000},
		{"RR", 3787, 4089, 0.0010400000},
	}
	gen := slb.NewZipfStream(1.8, 5000, 100_000, 77)
	for _, w := range want {
		res, err := slb.Simulate(gen, w.algo, slb.Config{Workers: 25, Seed: 77},
			slb.SimOptions{Sources: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.Loads[0] != w.load0 || res.Loads[24] != w.load24 {
			t.Errorf("%s: loads[0]=%d loads[24]=%d, want %d, %d",
				w.algo, res.Loads[0], res.Loads[24], w.load0, w.load24)
		}
		if math.Abs(res.Imbalance-w.imbalance) > 1e-9 {
			t.Errorf("%s: imbalance %.10f, want %.10f", w.algo, res.Imbalance, w.imbalance)
		}
	}
}

func TestGoldenHashValues(t *testing.T) {
	// The hash family is part of the on-the-wire contract: all senders
	// must agree on candidates forever.
	p := slb.NewPKG(slb.Config{Workers: 100, Seed: 1})
	got := []int{p.Route("alpha"), p.Route("beta"), p.Route("gamma"), p.Route("alpha")}
	want := []int{57, 97, 73, 36}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("routing sequence changed: got %v, want %v", got, want)
		}
	}
}
