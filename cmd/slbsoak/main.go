// Command slbsoak runs an hours-capable soak: drifting Zipf workloads
// (workload.Drift) cycled across every engine — eventsim, the dspe
// channel plane, the dspe ring plane and (with -tcp, on by default
// under -short) the dspe engine over the loopback TCP transport — with
// each run's telemetry registry sampled on a fixed interval. Interval rows stream
// to stdout as JSONL while the soak progresses; at the end a per-engine
// summary table prints and, optionally, is written as a BENCH_soak
// artifact whose "meta" carries the configuration string and seed so a
// later run can gate against it.
//
// Usage:
//
//	slbsoak [-short] [-tcp] [-faults] [-duration D] [-interval D] [-cycles N]
//	        [-algo NAME] [-workers N] [-sources N] [-shards N]
//	        [-messages N] [-keys N] [-z S] [-epoch N] [-stride N]
//	        [-seed N] [-service D]
//	        [-jsonl PATH] [-snapshot PATH] [-summary PATH]
//	        [-baseline PATH] [-tol F] [-meta k=v]...
//
// Examples:
//
//	slbsoak -duration 2h -jsonl soak.jsonl -summary bench/BENCH_soak_0.json
//	slbsoak -short -baseline ci/BENCH_soak_baseline.json   # CI smoke gate
//	slbsoak -short -faults -baseline ci                    # CI chaos-soak gate
//
// With -baseline (a BENCH_soak JSON file, or a directory of
// accumulated BENCH_soak*.json artifacts) the run exits nonzero when
// any engine's throughput falls more than -tol below the best baseline
// recorded under the same configuration; baselines from other
// configurations are ignored.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"slb/internal/clirun"
	"slb/internal/soak"
	"slb/internal/telemetry"
)

func main() {
	short := flag.Bool("short", false, "CI smoke preset: ~10s soak with small legs (flags set explicitly still win)")
	duration := flag.Duration("duration", time.Hour, "minimum soak length (finishes the in-flight cycle)")
	interval := flag.Duration("interval", 5*time.Second, "telemetry sampling period")
	cycles := flag.Int("cycles", 1, "minimum number of full engine cycles")
	algo := flag.String("algo", "W-C", "partitioner under soak (see slbcli for names)")
	workers := flag.Int("workers", 8, "bolt/worker instances per engine")
	sources := flag.Int("sources", 4, "spout/source instances per engine")
	shards := flag.Int("shards", 4, "reducer shards (R) per engine")
	messages := flag.Int64("messages", 2_000_000, "stream length of each engine leg")
	keys := flag.Int("keys", 20_000, "distinct keys in the drifting workload")
	zipf := flag.Float64("z", 1.2, "Zipf skew of the drifting workload")
	epoch := flag.Int64("epoch", 0, "drift epoch length in messages (0: messages/8)")
	stride := flag.Int("stride", 4096, "key-identity rotation stride per drift epoch")
	seed := flag.Uint64("seed", 1, "workload/partitioner seed (each cycle offsets it)")
	service := flag.Duration("service", 20*time.Microsecond, "dspe per-message bolt service time")
	tcp := flag.Bool("tcp", false, "add a dspe loopback-TCP-transport leg to each cycle (changes the baseline config identity)")
	faults := flag.Bool("faults", false, "inject deterministic chaos (frame drops + connection severs) into the TCP leg; implies -tcp and changes the baseline config identity")
	spin := flag.Bool("spin", false, "busy-wait the dspe service time (faithful CPU load for long soaks; burns host CPU)")
	jsonl := flag.String("jsonl", "", "also append interval rows to this JSONL file")
	snapshotPath := flag.String("snapshot", "", "write the final per-engine telemetry snapshots to this JSON file")
	summaryPath := flag.String("summary", "", "write the summary table to this BENCH_soak JSON file")
	baseline := flag.String("baseline", "", "gate against this BENCH_soak file or artifact directory")
	tol := flag.Float64("tol", 0.35, "gate tolerance: allowed fractional throughput drop vs baseline")
	meta := clirun.MetaFlag{}
	flag.Var(meta, "meta", "key=value run metadata recorded in the summary artifact (repeatable)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "slbsoak: unexpected arguments; see -h")
		os.Exit(2)
	}

	// -short shrinks every knob the user left at its default; explicit
	// flags keep their value so the preset stays composable.
	if *short {
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["duration"] {
			*duration = 8 * time.Second
		}
		if !set["interval"] {
			// Shorter than the fastest leg (the ring plane drains
			// 120k messages in a few hundred ms), so every dataplane
			// still emits in-flight interval rows, not just finals.
			*interval = 100 * time.Millisecond
		}
		if !set["cycles"] {
			*cycles = 2
		}
		if !set["messages"] {
			*messages = 120_000
		}
		if !set["keys"] {
			*keys = 5_000
		}
		if !set["service"] {
			*service = 5 * time.Microsecond
		}
		if !set["tcp"] {
			// CI's smoke gate should exercise the wire too.
			*tcp = true
		}
	}

	var jsonlFile *os.File
	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		jsonlFile = f
	}
	enc := json.NewEncoder(os.Stdout)
	cfg := soak.Config{
		Duration: *duration, Interval: *interval, MinCycles: *cycles,
		Algorithm: *algo, Workers: *workers, Sources: *sources, Shards: *shards,
		Messages: *messages, Keys: *keys, Zipf: *zipf, EpochLen: *epoch,
		Stride: *stride, Seed: *seed, ServiceTime: *service, Spin: *spin,
		TCP: *tcp, Faults: *faults,
		Emit: func(r soak.Row) {
			enc.Encode(r)
			if jsonlFile != nil {
				json.NewEncoder(jsonlFile).Encode(r)
			}
		},
	}

	rep, err := soak.Run(cfg)
	if err != nil {
		fatal(err)
	}

	if _, ok := meta["timestamp"]; !ok {
		meta["timestamp"] = time.Now().UTC().Format(time.RFC3339)
	}
	if _, ok := meta["seed"]; !ok {
		meta["seed"] = strconv.FormatUint(*seed, 10)
	}
	tab := soak.SummaryTable(rep, meta)
	fmt.Fprintf(os.Stderr, "\nsoak: %d cycles, %d rows\n", rep.Cycles, rep.Rows)
	if err := tab.Fprint(os.Stderr); err != nil {
		fatal(err)
	}
	if *summaryPath != "" {
		if err := tab.WriteJSON(*summaryPath); err != nil {
			fatal(err)
		}
	}
	if *snapshotPath != "" {
		if err := writeSnapshots(*snapshotPath, rep.FinalSnapshots); err != nil {
			fatal(err)
		}
	}

	if *baseline != "" {
		bases, err := soak.LoadBaselines(*baseline)
		if err != nil {
			fatal(err)
		}
		if violations := soak.Gate(rep, bases, *tol); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "slbsoak: REGRESSION:", v)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "soak: gate passed against %d baseline(s) at tol %.0f%%\n", len(bases), 100**tol)
	}
}

// writeSnapshots dumps each engine's final drained registry snapshot
// into one JSON object keyed by engine name.
func writeSnapshots(path string, snaps map[string]telemetry.Snapshot) error {
	doc := make(map[string]json.RawMessage, len(snaps))
	for eng, s := range snaps {
		data, err := json.Marshal(s)
		if err != nil {
			return err
		}
		doc[eng] = data
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slbsoak:", err)
	os.Exit(1)
}
