// Command slbstorm regenerates the paper's cluster experiments (Figures
// 13 and 14: throughput and latency on the Storm-like deployment) using
// the deterministic discrete-event engine.
//
// Usage:
//
//	slbstorm [-scale quick|default|full] [-csv DIR] <experiment>|all|list
//
// Examples:
//
//	slbstorm fig13              # throughput at default scale (m=2e5)
//	slbstorm -scale full fig14  # the paper's m=2e6 latency runs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"slb/internal/clirun"
	"slb/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "default", "experiment scale: quick|default|full")
	csvDir := flag.String("csv", "", "also write CSV files into this directory")
	jsonDir := flag.String("json", "", "also write BENCH_*.json files into this directory (CI perf artifacts)")
	chartFlag := flag.Bool("chart", false, "render chartable tables as ASCII plots (log-scale y)")
	meta := clirun.MetaFlag{}
	flag.Var(meta, "meta", "key=value run metadata recorded in every BENCH_*.json (repeatable)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: slbstorm [-scale quick|default|full] [-csv DIR] [-json DIR] [-meta k=v]... <experiment>|all|list\n\nexperiments:\n")
		for _, e := range experiments.List(true) {
			if e.Cluster {
				fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", e.Name, e.Description)
			}
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if _, ok := meta["timestamp"]; !ok {
		meta["timestamp"] = time.Now().UTC().Format(time.RFC3339)
	}

	if err := clirun.Main(os.Stdout, clirun.Options{Scale: *scaleFlag, CSVDir: *csvDir, JSONDir: *jsonDir, Cluster: true, Chart: *chartFlag, Meta: meta}, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "slbstorm:", err)
		os.Exit(1)
	}
}
