package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenStatsHeadSimRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.slbt")

	if err := cmdGen([]string{"-out", path, "-z", "1.8", "-keys", "500", "-messages", "20000"}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace not written: %v", err)
	}
	if err := cmdStats([]string{"-in", path}); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := cmdHead([]string{"-in", path, "-theta", "0.01", "-top", "3"}); err != nil {
		t.Fatalf("head: %v", err)
	}
	if err := cmdSim([]string{"-in", path, "-algo", "W-C", "-workers", "10"}); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestGenDataset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ct.slbt")
	if err := cmdGen([]string{"-out", path, "-dataset", "CT", "-scale", "quick"}); err != nil {
		t.Fatalf("gen dataset: %v", err)
	}
	if err := cmdStats([]string{"-in", path}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorsSurface(t *testing.T) {
	if err := cmdGen([]string{}); err == nil {
		t.Error("gen without -out accepted")
	}
	if err := cmdGen([]string{"-out", "/tmp/x.slbt", "-dataset", "NOPE"}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := cmdGen([]string{"-out", "/tmp/x2.slbt", "-dataset", "CT", "-scale", "bogus"}); err == nil {
		t.Error("bad scale accepted")
	}
	if err := cmdStats([]string{}); err == nil {
		t.Error("stats without -in accepted")
	}
	if err := cmdStats([]string{"-in", "/nonexistent.slbt"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := cmdHead([]string{}); err == nil {
		t.Error("head without -in accepted")
	}
	if err := cmdSim([]string{}); err == nil {
		t.Error("sim without -in accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "s.slbt")
	if err := cmdGen([]string{"-out", path, "-messages", "100", "-keys", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSim([]string{"-in", path, "-algo", "BOGUS"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestParseScaleMapping(t *testing.T) {
	for _, s := range []string{"quick", "default", "full", ""} {
		if _, err := parseScale(s); err != nil {
			t.Errorf("parseScale(%q): %v", s, err)
		}
	}
	if _, err := parseScale("nope"); err == nil {
		t.Error("parseScale(nope) accepted")
	}
}
