// Command slbtrace generates, inspects and replays binary key-stream
// traces (the .slbt format of internal/tracefile).
//
// Usage:
//
//	slbtrace gen   -out trace.slbt [-dataset WP|TW|CT | -z 1.4 -keys 10000] [-messages 1000000] [-seed 42] [-scale quick|default|full] [-payload keylen|mix]
//	slbtrace stats -in trace.slbt
//	slbtrace head  -in trace.slbt [-theta 0.004] [-top 20]
//	slbtrace sim   -in trace.slbt -algo D-C [-workers 50] [-sources 5]
//
// Examples:
//
//	slbtrace gen -out wp.slbt -dataset WP -scale default
//	slbtrace stats -in wp.slbt
//	slbtrace sim -in wp.slbt -algo PKG -workers 100
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"slb/internal/core"
	"slb/internal/hashing"
	"slb/internal/simulator"
	"slb/internal/spacesaving"
	"slb/internal/stream"
	"slb/internal/tracefile"
	"slb/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "head":
		err = cmdHead(os.Args[2:])
	case "sim":
		err = cmdSim(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "slbtrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: slbtrace <gen|stats|head|sim> [flags]

  gen    generate a trace file from a synthetic workload
  stats  print Table-I statistics of a trace
  head   print the heavy hitters of a trace (SpaceSaving)
  sim    partition a trace and report the load imbalance

run 'slbtrace <cmd> -h' for per-command flags`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "", "output trace file (required)")
	dataset := fs.String("dataset", "", "dataset stand-in: WP, TW or CT (overrides -z/-keys)")
	z := fs.Float64("z", 1.4, "Zipf exponent")
	keys := fs.Int("keys", 10_000, "distinct keys")
	messages := fs.Int64("messages", 1_000_000, "messages to generate")
	seed := fs.Uint64("seed", 42, "generator seed")
	scale := fs.String("scale", "default", "dataset scale: quick|default|full")
	payload := fs.String("payload", "", "record per-message payload values (version-2 trace): keylen|mix")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}

	var gen stream.Generator
	if *dataset != "" {
		ws, err := parseScale(*scale)
		if err != nil {
			return err
		}
		g, ok := workload.DatasetByName(*dataset, ws, *seed)
		if !ok {
			return fmt.Errorf("gen: unknown dataset %q", *dataset)
		}
		gen = g
	} else {
		gen = workload.NewZipf(*z, *keys, *messages, *seed)
	}
	if *payload != "" {
		fn, err := payloadFunc(*payload)
		if err != nil {
			return err
		}
		// Derive once at record time; replay then supplies these values
		// as recorded data (the engines' sampling contract — see
		// stream.ValueBatchGenerator).
		gen = stream.WithValues(gen, fn)
	}

	n, err := tracefile.WriteFile(*out, gen)
	if err != nil {
		return err
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d messages to %s (%.2f bytes/message)\n",
		n, *out, float64(info.Size())/float64(n))
	return nil
}

// payloadFunc maps a -payload model name to a deterministic derivation;
// the derived values are written into the trace, so every replay of the
// file observes the same samples regardless of the model chosen here.
func payloadFunc(name string) (func(key string, seq int64) int64, error) {
	switch name {
	case "keylen":
		return func(key string, _ int64) int64 { return int64(len(key)) }, nil
	case "mix":
		// A sign-varying mix of key identity and position: exercises
		// sum/min/max mergers with non-trivial, reproducible samples.
		return func(key string, seq int64) int64 {
			v := int64(hashing.Digest(key))%1000 + seq%97
			if seq%5 == 0 {
				v = -v
			}
			return v
		}, nil
	}
	return nil, fmt.Errorf("gen: unknown payload model %q (keylen|mix)", name)
}

func parseScale(s string) (workload.Scale, error) {
	switch s {
	case "quick":
		return workload.Quick, nil
	case "default", "":
		return workload.Default, nil
	case "full":
		return workload.Full, nil
	}
	return workload.Quick, fmt.Errorf("unknown scale %q", s)
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "trace file (required)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("stats: -in is required")
	}
	g, err := tracefile.OpenFile(*in)
	if err != nil {
		return err
	}
	defer g.Close()
	st := stream.Collect(g)
	fmt.Printf("messages: %d\nkeys:     %d\np1:       %.4f%% (key %q)\n",
		st.Messages, st.Keys, 100*st.P1, st.TopKey)
	if g.HasValues() {
		g.Reset()
		keys := make([]string, 512)
		vals := make([]int64, 512)
		var sum, n int64
		for {
			c := g.NextBatchValues(keys, vals)
			if c == 0 {
				break
			}
			for _, v := range vals[:c] {
				sum += v
			}
			n += int64(c)
		}
		fmt.Printf("payload:  recorded (version 2), sum %d, mean %.3f\n",
			sum, float64(sum)/float64(n))
	} else {
		fmt.Println("payload:  none (version 1; replay supplies the constant 1)")
	}
	return nil
}

func cmdHead(args []string) error {
	fs := flag.NewFlagSet("head", flag.ExitOnError)
	in := fs.String("in", "", "trace file (required)")
	theta := fs.Float64("theta", 0.004, "head frequency threshold θ")
	top := fs.Int("top", 20, "max keys to print")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("head: -in is required")
	}
	g, err := tracefile.OpenFile(*in)
	if err != nil {
		return err
	}
	defer g.Close()

	capacity := int(4 / *theta)
	if capacity < 64 {
		capacity = 64
	}
	sketch := spacesaving.New(capacity)
	// Drive the batch emission path and the digest-keyed sketch: one
	// digest per key, slab-at-a-time reads from the trace.
	slab := make([]string, 512)
	for {
		n := stream.NextBatch(g, slab)
		if n == 0 {
			break
		}
		for _, k := range slab[:n] {
			sketch.OfferDigest(hashing.Digest(k), k)
		}
	}
	hh := sketch.HeavyHitters(*theta)
	sort.Slice(hh, func(i, j int) bool { return hh[i].Count > hh[j].Count })
	if len(hh) > *top {
		hh = hh[:*top]
	}
	fmt.Printf("head at θ=%g over %d messages (%d keys shown):\n", *theta, sketch.N(), len(hh))
	for _, e := range hh {
		fmt.Printf("  %-24s est %.4f%%  (count %d, err ≤ %d)\n",
			e.Key, 100*float64(e.Count)/float64(sketch.N()), e.Count, e.Err)
	}
	return nil
}

func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	in := fs.String("in", "", "trace file (required)")
	algo := fs.String("algo", "D-C", "partitioner: KG, SG, PKG, D-C, W-C, RR")
	workers := fs.Int("workers", 50, "number of workers n")
	sources := fs.Int("sources", 5, "number of sources s")
	seed := fs.Uint64("seed", 42, "hash seed")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("sim: -in is required")
	}
	g, err := tracefile.OpenFile(*in)
	if err != nil {
		return err
	}
	defer g.Close()

	res, err := simulator.Run(g, *algo, core.Config{Workers: *workers, Seed: *seed},
		simulator.Options{Sources: *sources})
	if err != nil {
		return err
	}
	fmt.Printf("algorithm: %s\nworkers:   %d\nsources:   %d\nmessages:  %d\nimbalance: %.6g\n",
		res.Algorithm, res.Workers, res.Sources, res.Messages, res.Imbalance)
	if res.FinalD > 0 {
		fmt.Printf("final d:   %d\n", res.FinalD)
	}
	return nil
}
