// Command slbsim regenerates the paper's simulation experiments:
// Table I and Figures 1, 3–12, plus the ablations from DESIGN.md.
//
// Usage:
//
//	slbsim [-scale quick|default|full] [-csv DIR] <experiment>|all|list
//
// Examples:
//
//	slbsim fig1                 # Fig 1 at default scale
//	slbsim -scale full fig10    # the full 1e7-message grid
//	slbsim -csv results all     # everything, with CSV copies
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"slb/internal/clirun"
	"slb/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "default", "experiment scale: quick|default|full")
	csvDir := flag.String("csv", "", "also write CSV files into this directory")
	jsonDir := flag.String("json", "", "also write BENCH_*.json files into this directory (CI perf artifacts)")
	chartFlag := flag.Bool("chart", false, "render chartable tables as ASCII plots (log-scale y)")
	meta := clirun.MetaFlag{}
	flag.Var(meta, "meta", "key=value run metadata recorded in every BENCH_*.json (repeatable)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: slbsim [-scale quick|default|full] [-csv DIR] [-json DIR] [-meta k=v]... <experiment>|all|list\n\nexperiments:\n")
		for _, e := range experiments.List(false) {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", e.Name, e.Description)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if _, ok := meta["timestamp"]; !ok {
		meta["timestamp"] = time.Now().UTC().Format(time.RFC3339)
	}

	if err := clirun.Main(os.Stdout, clirun.Options{Scale: *scaleFlag, CSVDir: *csvDir, JSONDir: *jsonDir, Chart: *chartFlag, Meta: meta}, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "slbsim:", err)
		os.Exit(1)
	}
}
